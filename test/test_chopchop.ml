(* Tests for the Chop Chop core: wire arithmetic, the Rank directory,
   quorum certificates, distilled batches (explicit and dense), and the
   full client/broker/server protocol including its Byzantine cases:
   forged batches, replay attempts, illegitimate sequence numbers,
   stragglers, garbage collection and crash faults. *)

open Repro_chopchop
module Schnorr = Repro_crypto.Schnorr
module Multisig = Repro_crypto.Multisig
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Trace = Repro_trace.Trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Wire ------------------------------------------------------------- *)

let test_wire_paper_numbers () =
  checki "classic payload is 112 B for 8 B messages" 112
    (Wire.classic_payload_bytes ~msg_bytes:8);
  checki "28 bits identify 257M clients" 28 (Wire.id_bits ~clients:257_000_000);
  checkb "distilled entry is 11.5 B" true
    (abs_float (Wire.distilled_entry_bytes ~clients:257_000_000 ~msg_bytes:8 -. 11.5)
     < 1e-9);
  let classic = Wire.classic_batch_bytes ~count:65_536 ~msg_bytes:8 in
  checki "classic batch is exactly 7 MB" (65_536 * 112) classic;
  let distilled =
    Wire.distilled_batch_bytes ~clients:257_000_000 ~count:65_536 ~msg_bytes:8
      ~stragglers:0
  in
  checkb "fully distilled batch ~736 KB" true
    (distilled > 700_000 && distilled < 780_000);
  checkb "distillation shrinks ~9.7x" true
    (let ratio = float_of_int classic /. float_of_int distilled in
     ratio > 9.0 && ratio < 10.5)

let test_wire_stragglers_cost () =
  let d s =
    Wire.distilled_batch_bytes ~clients:1_000_000 ~count:1000 ~msg_bytes:8
      ~stragglers:s
  in
  checkb "stragglers add seq+sig bytes" true (d 100 - d 0 = 100 * (8 + 64));
  checkb "all-straggler approaches classic size" true
    (d 1000 > Wire.classic_batch_bytes ~count:1000 ~msg_bytes:8 / 2)

let suite_wire_props =
  [ qtest "distilled always smaller than classic for small messages"
      QCheck.(pair (int_range 1 100_000) (int_range 1 64))
      (fun (count, msg_bytes) ->
        Wire.distilled_batch_bytes ~clients:257_000_000 ~count ~msg_bytes ~stragglers:0
        < Wire.classic_batch_bytes ~count ~msg_bytes + 300);
    qtest "id_bits monotone" QCheck.(int_range 2 1_000_000_000) (fun c ->
        Wire.id_bits ~clients:c <= Wire.id_bits ~clients:(2 * c)) ]

(* --- Directory ---------------------------------------------------------- *)

let test_directory_ranks () =
  let d = Directory.create () in
  let kp i = (Types.keypair_of_seed ("c" ^ string_of_int i)).card in
  checki "first id 0" 0 (Directory.append d (kp 0));
  checki "second id 1" 1 (Directory.append d (kp 1));
  checki "size" 2 (Directory.size d);
  checkb "find returns the card" true (Directory.find d 1 = Some (kp 1));
  checkb "unknown id" true (Directory.find d 2 = None);
  checkb "negative id" true (Directory.find d (-1) = None)

let test_directory_dense () =
  let d = Directory.create ~dense_count:1000 () in
  checki "dense ids pre-provisioned" 1000 (Directory.size d);
  checkb "dense card deterministic" true
    (Directory.find d 42 = Some (Directory.dense_keypair 42).card);
  checki "explicit appended after the dense range" 1000
    (Directory.append d (Types.keypair_of_seed "x").card)

let test_directory_range_aggregation () =
  let d = Directory.create ~dense_count:500 () in
  let range_agg = Directory.aggregate_ms_pks_range d ~first:100 ~count:50 in
  let list_agg = Directory.aggregate_ms_pks d (List.init 50 (fun i -> 100 + i)) in
  checkb "prefix-sum range = explicit aggregation" true
    (Repro_crypto.Field61.equal range_agg list_agg)

let test_directory_sk_range () =
  let d = Directory.create ~dense_count:200 () in
  let agg_sk = Directory.aggregate_dense_ms_sks_range d ~first:10 ~count:20 in
  let shares =
    List.init 20 (fun i -> Multisig.sign (Directory.dense_keypair (10 + i)).ms_sk "stmt")
  in
  checkb "aggregated secret signs like the population" true
    (Multisig.signature_equal (Multisig.sign agg_sk "stmt")
       (Multisig.aggregate_signatures shares))

let test_directory_range_bounds () =
  let d = Directory.create ~dense_count:10 () in
  Alcotest.check_raises "outside dense population"
    (Invalid_argument "Directory.aggregate_ms_pks_range: outside dense population")
    (fun () -> ignore (Directory.aggregate_ms_pks_range d ~first:5 ~count:10))

(* --- Certs ------------------------------------------------------------------ *)

let server_keys n =
  Array.init n (fun i -> Multisig.keygen_deterministic ~seed:("srv" ^ string_of_int i))

let test_certs_quorum () =
  let keys = server_keys 4 in
  let stmt = Certs.witness_statement ~root:"r" ~broker:1 ~number:7 in
  let shards = List.init 2 (fun i -> (i, Certs.sign_shard (fst keys.(i)) stmt)) in
  let qc = Certs.assemble shards in
  let pk i = snd keys.(i) in
  checkb "f+1 distinct shards verify" true
    (Certs.verify ~statement:stmt ~server_ms_pk:pk ~quorum:2 qc);
  checkb "insufficient quorum rejected" false
    (Certs.verify ~statement:stmt ~server_ms_pk:pk ~quorum:3 qc);
  checkb "wrong statement rejected" false
    (Certs.verify
       ~statement:(Certs.witness_statement ~root:"r" ~broker:1 ~number:8)
       ~server_ms_pk:pk ~quorum:2 qc)

let test_certs_dedup_signers () =
  let keys = server_keys 4 in
  let stmt = "s" in
  let sh = Certs.sign_shard (fst keys.(0)) stmt in
  let qc = Certs.assemble [ (0, sh); (0, sh) ] in
  checki "duplicate signers collapse" 1 (List.length qc.Certs.signers)

let test_certs_forged_signer_list () =
  (* A Byzantine broker cannot claim signers that did not sign. *)
  let keys = server_keys 4 in
  let stmt = "s" in
  let qc = Certs.assemble [ (0, Certs.sign_shard (fst keys.(0)) stmt) ] in
  let forged = { qc with Certs.signers = [ 0; 1 ] } in
  checkb "padded signer list fails verification" false
    (Certs.verify ~statement:stmt ~server_ms_pk:(fun i -> snd keys.(i)) ~quorum:2
       forged)

let test_legitimizes () =
  checkb "seq 0 needs no evidence" true (Certs.legitimizes None 0);
  checkb "positive seq needs evidence" false (Certs.legitimizes None 5);
  let dc = { Certs.root = "r"; counter = 10; exceptions = []; qc = Certs.assemble [] } in
  checkb "counter > seq legitimizes" true (Certs.legitimizes (Some dc) 9);
  checkb "counter = seq legitimizes (paper's induction bound)" true
    (Certs.legitimizes (Some dc) 10);
  checkb "counter < seq does not" false (Certs.legitimizes (Some dc) 11)

(* --- Batch -------------------------------------------------------------------- *)

let mk_entries ids =
  Array.of_list (List.map (fun id -> { Batch.e_id = id; e_msg = Printf.sprintf "m%d" id }) ids)

let explicit_batch dir ~ids ~agg_seq ~straggler_ids =
  let entries = mk_entries ids in
  (* First build with the reducers' aggregate signature. *)
  let stragglers =
    Array.of_list
      (List.map
         (fun id ->
           let kp = Directory.dense_keypair id in
           let msg = Printf.sprintf "m%d" id in
           { Batch.s_id = id; s_seq = 0;
             s_sig = Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq:0 msg) })
         straggler_ids)
  in
  let skeleton =
    Batch.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq ~stragglers ~agg_sig:None
  in
  let root = Batch.reduction_root skeleton in
  let reducers = List.filter (fun id -> not (List.mem id straggler_ids)) ids in
  let agg_sig =
    match reducers with
    | [] -> None
    | _ ->
      Some
        (Multisig.aggregate_signatures
           (List.map
              (fun id ->
                Multisig.sign (Directory.dense_keypair id).ms_sk
                  (Types.reduction_statement ~root))
              reducers))
  in
  ignore dir;
  Batch.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq ~stragglers ~agg_sig

let test_batch_explicit_verifies () =
  let dir = Directory.create ~dense_count:100 () in
  let b = explicit_batch dir ~ids:[ 1; 5; 9; 42 ] ~agg_seq:3 ~straggler_ids:[] in
  checkb "fully distilled verifies" true (Batch.verify dir b);
  checki "count" 4 (Batch.count b);
  checki "no stragglers" 0 (Batch.straggler_count b)

let test_batch_with_stragglers () =
  let dir = Directory.create ~dense_count:100 () in
  let b = explicit_batch dir ~ids:[ 1; 5; 9; 42 ] ~agg_seq:3 ~straggler_ids:[ 5; 42 ] in
  checkb "partially distilled verifies" true (Batch.verify dir b);
  checki "stragglers" 2 (Batch.straggler_count b);
  checki "reduced" 2 (Batch.reduced_count b);
  checkb "identity root differs from reduction root" false
    (Batch.identity_root b = Batch.reduction_root b)

let test_batch_all_stragglers () =
  let dir = Directory.create ~dense_count:100 () in
  let b = explicit_batch dir ~ids:[ 2; 3 ] ~agg_seq:1 ~straggler_ids:[ 2; 3 ] in
  checkb "classic (all-straggler) batch verifies" true (Batch.verify dir b)

let test_batch_rejects_unsorted () =
  Alcotest.check_raises "unsorted entries"
    (Invalid_argument "Batch.make_explicit: entries must be sorted strictly by id")
    (fun () ->
      ignore
        (Batch.make_explicit ~broker:0 ~number:0 ~entries:(mk_entries [ 5; 1 ])
           ~agg_seq:0 ~stragglers:[||] ~agg_sig:None));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Batch.make_explicit: entries must be sorted strictly by id")
    (fun () ->
      ignore
        (Batch.make_explicit ~broker:0 ~number:0 ~entries:(mk_entries [ 1; 1 ])
           ~agg_seq:0 ~stragglers:[||] ~agg_sig:None))

let test_batch_rejects_forgery () =
  let dir = Directory.create ~dense_count:100 () in
  let good = explicit_batch dir ~ids:[ 1; 5; 9 ] ~agg_seq:2 ~straggler_ids:[] in
  (* Garbage aggregate signature *)
  let bad1 = { good with Batch.agg_sig = Some (Multisig.forge_garbage ()) } in
  checkb "garbage aggregate rejected" false (Batch.verify dir bad1);
  (* Missing aggregate for reduced entries *)
  let bad2 = { good with Batch.agg_sig = None } in
  checkb "missing aggregate rejected" false (Batch.verify dir bad2);
  (* Tampered message: the aggregate no longer covers the root *)
  let entries = mk_entries [ 1; 5; 9 ] in
  entries.(1) <- { entries.(1) with Batch.e_msg = "EVIL" };
  let bad3 = { good with Batch.entries = Batch.Explicit entries } in
  checkb "tampered message rejected" false (Batch.verify dir bad3)

let test_batch_rejects_bad_straggler_sig () =
  let dir = Directory.create ~dense_count:100 () in
  let good = explicit_batch dir ~ids:[ 1; 5 ] ~agg_seq:2 ~straggler_ids:[ 5 ] in
  let bad_strag =
    Array.map (fun s -> { s with Batch.s_sig = Schnorr.forge_garbage () }) good.Batch.stragglers
  in
  let bad = { good with Batch.stragglers = bad_strag } in
  checkb "forged straggler signature rejected" false (Batch.verify dir bad)

let test_batch_dense_verifies () =
  let dir = Directory.create ~dense_count:10_000 () in
  let b =
    Batch.forge_dense dir ~broker:3 ~number:0 ~first_id:100 ~count:1000 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  checkb "dense fully distilled verifies" true (Batch.verify dir b);
  let b2 =
    Batch.forge_dense dir ~broker:3 ~number:1 ~first_id:100 ~count:1000 ~msg_bytes:8
      ~tag:2 ~straggler_count:100
  in
  checkb "dense with stragglers verifies" true (Batch.verify dir b2);
  checki "dense straggler count" 100 (Batch.straggler_count b2);
  let b3 =
    Batch.forge_dense dir ~broker:3 ~number:2 ~first_id:0 ~count:500 ~msg_bytes:8
      ~tag:1 ~straggler_count:500
  in
  checkb "dense all-straggler verifies" true (Batch.verify dir b3)

let test_batch_dense_rejects () =
  let dir = Directory.create ~dense_count:1000 () in
  let b =
    Batch.forge_dense dir ~broker:0 ~number:0 ~first_id:0 ~count:100 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  checkb "garbage aggregate rejected" false
    (Batch.verify dir { b with Batch.agg_sig = Some (Multisig.forge_garbage ()) });
  checkb "out-of-directory range rejected" false
    (Batch.verify dir
       { b with
         Batch.entries =
           (match b.Batch.entries with
            | Batch.Dense d -> Batch.Dense { d with Batch.first_id = 950 }
            | e -> e) })

let test_batch_dense_explicit_equivalence () =
  (* Ablation (DESIGN.md): the two representations describe the same
     batch; the explicit rebuild of a dense batch verifies too. *)
  let dir = Directory.create ~dense_count:1000 () in
  let dense =
    Batch.forge_dense dir ~broker:0 ~number:0 ~first_id:10 ~count:32 ~msg_bytes:8
      ~tag:4 ~straggler_count:0
  in
  checkb "dense verifies" true (Batch.verify dir dense);
  let d = match dense.Batch.entries with Batch.Dense d -> d | _ -> assert false in
  let entries =
    Array.init 32 (fun i ->
        let id = 10 + i in
        { Batch.e_id = id; e_msg = Batch.dense_message d id })
  in
  let skeleton =
    Batch.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq:dense.Batch.agg_seq
      ~stragglers:[||] ~agg_sig:None
  in
  let root = Batch.reduction_root skeleton in
  let agg =
    Multisig.aggregate_signatures
      (List.init 32 (fun i ->
           Multisig.sign (Directory.dense_keypair (10 + i)).ms_sk
             (Types.reduction_statement ~root)))
  in
  let explicit =
    Batch.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq:dense.Batch.agg_seq
      ~stragglers:[||] ~agg_sig:(Some agg)
  in
  checkb "equivalent explicit verifies" true (Batch.verify dir explicit);
  checki "same count" (Batch.count dense) (Batch.count explicit);
  checkb "same wire size" true
    (Batch.wire_bytes ~clients:1000 dense = Batch.wire_bytes ~clients:1000 explicit)

let test_batch_costs_monotone () =
  let dir = Directory.create ~dense_count:200_000 () in
  let full =
    Batch.forge_dense dir ~broker:0 ~number:0 ~first_id:0 ~count:65_536 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  let classic =
    Batch.forge_dense dir ~broker:0 ~number:1 ~first_id:0 ~count:65_536 ~msg_bytes:8
      ~tag:2 ~straggler_count:65_536
  in
  let witness b = Cpu.total (Batch.witness_cpu_work b) in
  checkb "classic witness cost ~28x distilled (paper §3.2)" true
    (let r = witness classic /. witness full in
     r > 20. && r < 35.);
  checkb "non-witness cheaper than witness" true
    (Cpu.total (Batch.non_witness_cpu_work full) < witness full)

let test_fallback_verify_cost () =
  (* Satellite bugfix: when batch verification fails, the broker falls
     back to n INDIVIDUAL verifications (§4.2), not a second batch pass.
     Pin the cost ratio so the fallback stays n * ed25519_verify. *)
  let n = 65_536 in
  let fallback = float_of_int n *. Cost.ed25519_verify in
  let batch = Cost.ed25519_batch_verify n in
  let r = fallback /. batch in
  checkb "individual fallback ~2.3x batch (64k sigs)" true (r > 2.0 && r < 2.7);
  (* Small flushes amortise worse: batching still wins but less. *)
  let r64 = (64. *. Cost.ed25519_verify) /. Cost.ed25519_batch_verify 64 in
  checkb "fallback dearer than batch at any size" true (r64 > 1.0)

let test_ceil_log2_boundaries () =
  let checki = Alcotest.check Alcotest.int in
  checki "1 -> 0" 0 (Cost.ceil_log2 1);
  checki "2 -> 1" 1 (Cost.ceil_log2 2);
  checki "3 -> 2" 2 (Cost.ceil_log2 3);
  checki "4 -> 2" 2 (Cost.ceil_log2 4);
  checki "5 -> 3" 3 (Cost.ceil_log2 5);
  checki "1024 -> 10" 10 (Cost.ceil_log2 1024);
  checki "1025 -> 11" 11 (Cost.ceil_log2 1025);
  checki "65536 -> 16" 16 (Cost.ceil_log2 65_536);
  (* Merkle proof depth at a power-of-two leaf count: exactly log2, no
     float off-by-one (the old float log was 17 hashes at 65,536). *)
  let depth leaves = Cost.merkle_verify_proof ~leaves /. Cost.hash_per_byte /. 64. in
  checkb "proof depth 16 at 64k leaves" true (abs_float (depth 65_536 -. 16.) < 1e-6);
  checkb "proof depth 10 at 1024 leaves" true (abs_float (depth 1024 -. 10.) < 1e-6)

(* --- protocol integration over the idealised sequencer ----------------------- *)

let mk_deployment ?(underlay = Deployment.Sequencer) ?(n_servers = 4) ?(dense = 0) () =
  Deployment.create
    { Deployment.default_config with underlay; n_servers; dense_clients = dense }

let test_e2e_agreement_nodup () =
  let d = mk_deployment () in
  let per_server = Array.make 4 [] in
  Deployment.server_deliver_hook d (fun srv del ->
      match del with
      | Proto.Ops ops -> per_server.(srv) <- Array.to_list ops @ per_server.(srv)
      | Proto.Bulk _ -> ());
  let clients = List.init 5 (fun _ -> Deployment.add_client d ()) in
  List.iter Client.signup clients;
  Deployment.run d ~until:3.0;
  List.iteri
    (fun i c ->
      Client.broadcast c (Printf.sprintf "a%d" i);
      Client.broadcast c (Printf.sprintf "b%d" i))
    clients;
  Deployment.run d ~until:40.0;
  let logs = Array.map List.rev per_server in
  checki "all 10 delivered" 10 (List.length logs.(0));
  Array.iter (fun l -> checkb "agreement" true (l = logs.(0))) logs;
  checkb "no duplication" true
    (List.length (List.sort_uniq compare logs.(0)) = 10);
  List.iteri
    (fun i c -> checki (Printf.sprintf "client %d completed" i) 2 (Client.completed c))
    clients

let test_signup_ranks_agree () =
  let d = mk_deployment () in
  let clients = List.init 6 (fun _ -> Deployment.add_client d ()) in
  List.iter Client.signup clients;
  Deployment.run d ~until:5.0;
  let ids = List.filter_map Client.id clients in
  checki "all signed up" 6 (List.length ids);
  checkb "ids are a permutation of 0..5" true
    (List.sort compare ids = [ 0; 1; 2; 3; 4; 5 ]);
  Array.iter
    (fun sv -> checki "directory size agrees" 6 (Directory.size (Server.directory sv)))
    (Deployment.servers d)

let test_sequence_numbers_increase () =
  let d = mk_deployment () in
  let c = Deployment.add_client d () in
  Client.signup c;
  Deployment.run d ~until:3.0;
  for i = 0 to 4 do
    Client.broadcast c (Printf.sprintf "msg%d" i)
  done;
  Deployment.run d ~until:60.0;
  checki "five completions" 5 (Client.completed c);
  checkb "sequence advanced at least 5" true (Client.last_sequence c >= 4)

let test_consecutive_duplicate_dropped () =
  (* The no-duplication rule (§4.2): a server delivers m iff seq > last
     and m <> last message — a client violating CR2 (same message twice
     in a row) has the second copy treated as a replay, and its delivery
     certificate arrives through the exceptions path. *)
  let d = mk_deployment () in
  let delivered = ref 0 in
  Deployment.server_deliver_hook d (fun srv del ->
      if srv = 0 then delivered := !delivered + Proto.delivery_count del);
  let c = Deployment.add_client d () in
  Client.signup c;
  Deployment.run d ~until:3.0;
  Client.broadcast c "same";
  Client.broadcast c "same";
  Client.broadcast c "different";
  Deployment.run d ~until:60.0;
  checki "replay suppressed: 2 of 3 delivered" 2 !delivered;
  checki "client still completed all three" 3 (Client.completed c)

let test_byzantine_clients_straggle () =
  let d = mk_deployment () in
  let delivered = ref [] in
  Deployment.server_deliver_hook d (fun srv del ->
      if srv = 2 then
        match del with
        | Proto.Ops ops -> Array.iter (fun (_, m) -> delivered := m :: !delivered) ops
        | Proto.Bulk _ -> ());
  let bad = Deployment.add_client d () in
  let mute = Deployment.add_client d () in
  let good = Deployment.add_client d () in
  List.iter Client.signup [ bad; mute; good ];
  Deployment.run d ~until:3.0;
  Client.misbehave_bad_share bad;
  Client.misbehave_mute_reduction mute;
  Client.broadcast bad "from-bad";
  Client.broadcast mute "from-mute";
  Client.broadcast good "from-good";
  Deployment.run d ~until:60.0;
  List.iter
    (fun m -> checkb ("delivered " ^ m) true (List.mem m !delivered))
    [ "from-bad"; "from-mute"; "from-good" ];
  checki "bad client completed (as straggler)" 1 (Client.completed bad);
  checki "mute client completed (as straggler)" 1 (Client.completed mute)

let test_forged_batch_never_delivered () =
  (* A Byzantine (load) broker submits a malformed batch: no correct
     server witnesses it, so it cannot enter the total order. *)
  let d = mk_deployment ~dense:10_000 () in
  let delivered = ref 0 in
  Deployment.server_deliver_hook d (fun _ del ->
      delivered := !delivered + Proto.delivery_count del);
  let dir = Server.directory (Deployment.servers d).(0) in
  let good =
    Batch.forge_dense dir ~broker:0 ~number:0 ~first_id:0 ~count:64 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  let forged = { good with Batch.agg_sig = Some (Multisig.forge_garbage ()) } in
  Broker.submit_prebuilt (Deployment.broker d 0) forged ~on_complete:(fun _ ->
      Alcotest.fail "forged batch must not complete");
  Deployment.run d ~until:30.0;
  checki "nothing delivered" 0 !delivered

let test_replayed_batch_deduplicated () =
  (* A faulty broker replays the same distilled batch (same range, same
     tag): the second copy is ignored by every server. *)
  let d = mk_deployment ~dense:10_000 () in
  let delivered = ref 0 in
  Deployment.server_deliver_hook d (fun srv del ->
      if srv = 0 then delivered := !delivered + Proto.delivery_count del);
  let dir = Server.directory (Deployment.servers d).(0) in
  let b1 =
    Batch.forge_dense dir ~broker:0 ~number:0 ~first_id:0 ~count:64 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  let b2 =
    (* Same content, different broker-local number: a genuine replay. *)
    Batch.forge_dense dir ~broker:0 ~number:1 ~first_id:0 ~count:64 ~msg_bytes:8
      ~tag:1 ~straggler_count:0
  in
  Broker.submit_prebuilt (Deployment.broker d 0) b1 ~on_complete:(fun _ -> ());
  Repro_sim.Engine.schedule (Deployment.engine d) ~delay:5.0 (fun () ->
      Broker.submit_prebuilt (Deployment.broker d 0) b2 ~on_complete:(fun _ -> ()));
  Deployment.run d ~until:40.0;
  checki "64 messages delivered exactly once" 64 !delivered

let test_illegitimate_sequence_rejected () =
  (* A Byzantine client pushes a far-future sequence number without a
     legitimacy certificate: brokers must not batch it (§4.2). *)
  let d = mk_deployment ~dense:1000 () in
  let delivered = ref 0 in
  Deployment.server_deliver_hook d (fun _ del ->
      delivered := !delivered + Proto.delivery_count del);
  let id = 7 in
  let kp = Directory.dense_keypair id in
  let msg = "evil" in
  let seq = 1_000_000 in
  let tsig = Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq msg) in
  Broker.receive_client (Deployment.broker d 0)
    (Proto.Submission
       { id; seq; msg; tsig; evidence = None;
         ctx = Repro_trace.Trace.Ctx.make ~root:0 });
  Deployment.run d ~until:20.0;
  checki "illegitimate submission dropped" 0 !delivered;
  (* The same submission with seq 0 is accepted. *)
  let tsig0 = Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq:0 msg) in
  Broker.receive_client (Deployment.broker d 0)
    (Proto.Submission
       { id; seq = 0; msg; tsig = tsig0; evidence = None;
         ctx = Repro_trace.Trace.Ctx.make ~root:0 });
  Deployment.run d ~until:40.0;
  checki "legitimate first message delivered (as straggler)" 4 !delivered

let test_gc_collects () =
  let d = mk_deployment ~dense:100_000 () in
  let dir = Server.directory (Deployment.servers d).(0) in
  for k = 0 to 9 do
    let b =
      Batch.forge_dense dir ~broker:0 ~number:k ~first_id:0 ~count:256 ~msg_bytes:8
        ~tag:(k + 1) ~straggler_count:0
    in
    Repro_sim.Engine.schedule (Deployment.engine d) ~delay:(0.5 *. float_of_int k)
      (fun () -> Broker.submit_prebuilt (Deployment.broker d 0) b ~on_complete:(fun _ -> ()))
  done;
  Deployment.run d ~until:60.0;
  Array.iter
    (fun sv ->
      checki "all batches delivered" 10 (Server.delivery_counter sv);
      checkb "garbage collected" true (Server.stored_batches sv <= 1))
    (Deployment.servers d)

let test_gc_blocked_by_crashed_server () =
  (* §5.2 / §8: if one server stops delivering, the others cannot collect
     — memory grows.  (The crashed server stops gossiping its counter.) *)
  let d = mk_deployment ~dense:100_000 () in
  let dir = Server.directory (Deployment.servers d).(0) in
  Deployment.crash_server d 3;
  for k = 0 to 9 do
    let b =
      Batch.forge_dense dir ~broker:0 ~number:k ~first_id:0 ~count:256 ~msg_bytes:8
        ~tag:(k + 1) ~straggler_count:0
    in
    Repro_sim.Engine.schedule (Deployment.engine d) ~delay:(0.5 *. float_of_int k)
      (fun () -> Broker.submit_prebuilt (Deployment.broker d 0) b ~on_complete:(fun _ -> ()))
  done;
  Deployment.run d ~until:60.0;
  checkb "survivors hold all batches" true
    (Server.stored_batches (Deployment.servers d).(0) >= 10)

let test_crash_f_servers_liveness () =
  (* f = 1 of 4 servers crash: clients still complete. *)
  let d = mk_deployment ~underlay:Deployment.Pbft () in
  let c = Deployment.add_client d () in
  Client.signup c;
  Deployment.run d ~until:4.0;
  Deployment.crash_server d 3;
  Client.broadcast c "survives";
  Deployment.run d ~until:90.0;
  checki "completed despite crash" 1 (Client.completed c)

let test_no_send_before_cpu_completion () =
  (* The completion-gating invariant: a broker's externally visible steps
     (batch launch, distillation start) happen inside the continuation of
     the CPU job that models their work, never earlier on the sim clock.
     Every such trace event must coincide — same actor, same instant —
     with a cpu/job_done completion. *)
  let sink = Trace.Sink.memory () in
  let d =
    Deployment.create
      { Deployment.default_config with
        underlay = Deployment.Sequencer; n_servers = 4; trace = sink }
  in
  let clients = List.init 4 (fun _ -> Deployment.add_client d ()) in
  List.iter Client.signup clients;
  Deployment.run d ~until:3.0;
  List.iteri (fun i c -> Client.broadcast c (Printf.sprintf "m%d" i)) clients;
  Deployment.run d ~until:40.0;
  List.iter (fun c -> checki "client completed" 1 (Client.completed c)) clients;
  let evs = Trace.Sink.events sink in
  let cpu_done = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      if ev.Trace.ev_cat = "cpu" && ev.Trace.ev_name = "job_done" then
        Hashtbl.replace cpu_done (ev.Trace.ev_actor, ev.Trace.ev_time) ())
    evs;
  let gated ev =
    ev.Trace.ev_cat = "broker"
    && (ev.Trace.ev_name = "launch"
        || (ev.Trace.ev_name = "distill" && ev.Trace.ev_phase = Trace.B))
  in
  let checked = ref 0 in
  List.iter
    (fun ev ->
      if gated ev then begin
        incr checked;
        checkb
          (Printf.sprintf "%s at t=%g rides a cpu completion" ev.Trace.ev_name
             ev.Trace.ev_time)
          true
          (Hashtbl.mem cpu_done (ev.Trace.ev_actor, ev.Trace.ev_time))
      end)
    evs;
  checkb "saw gated broker events" true (!checked > 0)

let test_stob_item_bytes () =
  let qc = Certs.assemble [] in
  checkb "batch ref fits a hash + witness" true
    (Stob_item.wire_bytes
       (Stob_item.Batch_ref { broker = 0; number = 0; root = "r"; witness = qc })
     < 400);
  checkb "signup carries two keys" true
    (Stob_item.wire_bytes
       (Stob_item.Signup
          { card = (Types.keypair_of_seed "s").card; reply_broker = 0; nonce = 1 })
     >= 64)

let suite_batch_props =
  [ qtest ~count:40 "random straggler subsets verify; any corruption fails"
      QCheck.(pair (list_of_size (Gen.int_range 1 12) (int_bound 60)) (int_bound 2))
      (fun (raw_ids, mutation) ->
        let dir = Directory.create ~dense_count:100 () in
        let ids = List.sort_uniq compare raw_ids in
        let k = List.length ids / 2 in
        let stragglers = List.filteri (fun i _ -> i < k) ids in
        let b = explicit_batch dir ~ids ~agg_seq:5 ~straggler_ids:stragglers in
        let ok = Batch.verify dir b in
        let corrupted =
          match mutation with
          | 0 when b.Batch.agg_sig <> None ->
            Some { b with Batch.agg_sig = Some (Multisig.forge_garbage ()) }
          | 1 ->
            (* A different aggregate sequence number breaks the root the
               reducers signed (unless everyone straggled). *)
            if Batch.reduced_count b > 0 then Some { b with Batch.agg_seq = 6 }
            else None
          | _ -> None
        in
        ok
        && (match corrupted with
            | Some bad -> not (Batch.verify dir bad)
            | None -> true));
    qtest ~count:40 "wire size grows monotonically with stragglers"
      QCheck.(pair (int_range 1 1000) (int_range 0 1000))
      (fun (count, s) ->
        let s = min s count in
        Wire.distilled_batch_bytes ~clients:1_000_000 ~count ~msg_bytes:8 ~stragglers:s
        >= Wire.distilled_batch_bytes ~clients:1_000_000 ~count ~msg_bytes:8 ~stragglers:0) ]

let () =
  Alcotest.run "chopchop"
    [ ("wire",
       Alcotest.test_case "paper numbers" `Quick test_wire_paper_numbers
       :: Alcotest.test_case "straggler cost" `Quick test_wire_stragglers_cost
       :: suite_wire_props);
      ("directory",
       [ Alcotest.test_case "ranks" `Quick test_directory_ranks;
         Alcotest.test_case "dense population" `Quick test_directory_dense;
         Alcotest.test_case "range aggregation" `Quick test_directory_range_aggregation;
         Alcotest.test_case "secret range aggregation" `Quick test_directory_sk_range;
         Alcotest.test_case "range bounds" `Quick test_directory_range_bounds ]);
      ("certs",
       [ Alcotest.test_case "quorum" `Quick test_certs_quorum;
         Alcotest.test_case "signer dedup" `Quick test_certs_dedup_signers;
         Alcotest.test_case "forged signer list" `Quick test_certs_forged_signer_list;
         Alcotest.test_case "legitimizes" `Quick test_legitimizes ]);
      ("batch",
       [ Alcotest.test_case "explicit verifies" `Quick test_batch_explicit_verifies;
         Alcotest.test_case "with stragglers" `Quick test_batch_with_stragglers;
         Alcotest.test_case "all stragglers (classic)" `Quick test_batch_all_stragglers;
         Alcotest.test_case "rejects unsorted/duplicate" `Quick test_batch_rejects_unsorted;
         Alcotest.test_case "rejects forgery" `Quick test_batch_rejects_forgery;
         Alcotest.test_case "rejects bad straggler sig" `Quick test_batch_rejects_bad_straggler_sig;
         Alcotest.test_case "dense verifies" `Quick test_batch_dense_verifies;
         Alcotest.test_case "dense rejects" `Quick test_batch_dense_rejects;
         Alcotest.test_case "dense/explicit equivalence" `Quick test_batch_dense_explicit_equivalence;
         Alcotest.test_case "cost model monotone" `Quick test_batch_costs_monotone;
         Alcotest.test_case "fallback verify cost" `Quick test_fallback_verify_cost;
         Alcotest.test_case "ceil_log2 boundaries" `Quick test_ceil_log2_boundaries ]
       @ suite_batch_props);
      ("protocol",
       [ Alcotest.test_case "e2e agreement + no-dup" `Quick test_e2e_agreement_nodup;
         Alcotest.test_case "signup ranks agree" `Quick test_signup_ranks_agree;
         Alcotest.test_case "sequence numbers increase" `Quick test_sequence_numbers_increase;
         Alcotest.test_case "consecutive duplicate dropped" `Quick test_consecutive_duplicate_dropped;
         Alcotest.test_case "byzantine clients straggle" `Quick test_byzantine_clients_straggle;
         Alcotest.test_case "forged batch never delivered" `Quick test_forged_batch_never_delivered;
         Alcotest.test_case "replayed batch deduplicated" `Quick test_replayed_batch_deduplicated;
         Alcotest.test_case "illegitimate sequence rejected" `Quick test_illegitimate_sequence_rejected;
         Alcotest.test_case "gc collects" `Quick test_gc_collects;
         Alcotest.test_case "gc blocked by crash" `Quick test_gc_blocked_by_crashed_server;
         Alcotest.test_case "liveness under f crashes" `Quick test_crash_f_servers_liveness;
         Alcotest.test_case "no send before cpu completion" `Quick
           test_no_send_before_cpu_completion;
         Alcotest.test_case "stob item bytes" `Quick test_stob_item_bytes ]) ]
