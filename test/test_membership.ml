(* Dynamic-membership tests: the Membership state machine's thresholds
   and idempotence guard (the sole replay protection for ordered
   Reconfigure commands), the rank directory staying coherent across an
   epoch change, checkpoint round-trips that carry a changed committee
   through a cold restart, and a joiner ordered in mid-partition that
   must keep retrying state transfer until the heal. *)

module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Deployment = Repro_chopchop.Deployment
module Server = Repro_chopchop.Server
module Client = Repro_chopchop.Client
module Directory = Repro_chopchop.Directory
module Membership = Repro_chopchop.Membership
module Chaos = Repro_chaos.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let count_instant sink name =
  List.length
    (List.filter
       (fun (e : Trace.event) -> e.ev_phase = Trace.I && e.ev_name = name)
       (Trace.Sink.events sink))

(* --- Membership state machine ---------------------------------------- *)

let test_thresholds () =
  let m = Membership.create ~capacity:8 ~initial:4 in
  checki "epoch 0" 0 (Membership.epoch m);
  checki "4 active" 4 (Membership.active_count m);
  checki "f = 1 at n = 4" 1 (Membership.f m);
  checki "quorum = 2 at n = 4" 2 (Membership.quorum m);
  Alcotest.(check (list int))
    "active slots are the founding prefix" [ 0; 1; 2; 3 ]
    (Membership.active_slots m);
  (* Grow to 7: f = (7-1)/3 = 2, quorum 3. *)
  checkb "join 4" true (Membership.apply m (Membership.Join 4));
  checkb "join 5" true (Membership.apply m (Membership.Join 5));
  checkb "join 6" true (Membership.apply m (Membership.Join 6));
  checki "f = 2 at n = 7" 2 (Membership.f m);
  checki "quorum = 3 at n = 7" 3 (Membership.quorum m);
  checki "epoch counts every change" 3 (Membership.epoch m);
  (* Shrink back down: thresholds follow the active count, not capacity. *)
  checkb "leave 6" true (Membership.apply m (Membership.Leave 6));
  checkb "leave 5" true (Membership.apply m (Membership.Leave 5));
  checki "f = 1 at n = 5" 1 (Membership.f m);
  checki "quorum = 2 at n = 5" 2 (Membership.quorum m)

let test_idempotence () =
  let m = Membership.create ~capacity:5 ~initial:4 in
  (* The same ordered command can reach a server twice (live delivery,
     then WAL replay / state transfer): the second application must be a
     no-op that does not bump the epoch. *)
  checkb "first join applies" true (Membership.apply m (Membership.Join 4));
  checkb "replayed join is a no-op" false (Membership.apply m (Membership.Join 4));
  checki "epoch bumped once" 1 (Membership.epoch m);
  checkb "first leave applies" true (Membership.apply m (Membership.Leave 3));
  checkb "replayed leave is a no-op" false
    (Membership.apply m (Membership.Leave 3));
  checki "epoch at 2" 2 (Membership.epoch m);
  (* Replace freshness: only a strictly newer generation installs. *)
  checkb "gen 1 replace applies" true
    (Membership.apply m (Membership.Replace (2, 1)));
  checkb "replayed gen 1 is a no-op" false
    (Membership.apply m (Membership.Replace (2, 1)));
  checkb "stale gen 0 is a no-op" false
    (Membership.apply m (Membership.Replace (2, 0)));
  checki "generation recorded" 1 (Membership.generation m 2);
  checki "epoch at 3" 3 (Membership.epoch m)

let test_snapshot_restore_reset () =
  let m = Membership.create ~capacity:5 ~initial:4 in
  ignore (Membership.apply m (Membership.Join 4));
  ignore (Membership.apply m (Membership.Leave 1));
  ignore (Membership.apply m (Membership.Replace (2, 3)));
  let snap = Membership.snapshot m in
  (* Restore into a fresh instance (a joiner restoring a peer's
     checkpoint) must reproduce epoch, active set and generations. *)
  let m' = Membership.create ~capacity:5 ~initial:4 in
  Membership.restore m' snap;
  checki "epoch restored" (Membership.epoch m) (Membership.epoch m');
  Alcotest.(check (list int))
    "active set restored"
    (Membership.active_slots m) (Membership.active_slots m');
  checki "generation restored" 3 (Membership.generation m' 2);
  (* Reset is the cold-restart starting point: epoch 0, founding set. *)
  Membership.reset m';
  checki "reset epoch" 0 (Membership.epoch m');
  Alcotest.(check (list int))
    "reset active set" [ 0; 1; 2; 3 ]
    (Membership.active_slots m');
  checki "reset generations" 0 (Membership.generation m' 2)

(* --- deployment-level membership edges -------------------------------- *)

let store_cfg trace =
  { Deployment.default_config with
    Deployment.spare_servers = 1;
    store_enabled = true;
    checkpoint_every = 4;
    trace }

(* Signups straddling an epoch change: explicit identities registered
   before and after an ordered Join must both resolve on every member,
   the joiner included (it learns pre-join signups through state
   transfer, post-join ones through the live order). *)
let test_rank_directory_across_epoch () =
  let trace = Trace.Sink.memory () in
  let cfg = store_cfg trace in
  let d = Deployment.create cfg in
  let engine = Deployment.engine d in
  let inv = Chaos.Invariant.create ~n_servers:5 in
  Chaos.Invariant.attach inv d;
  let a = Deployment.add_client d () in
  let b = Deployment.add_client d () in
  Client.signup a;
  for j = 0 to 2 do
    Client.broadcast a (Printf.sprintf "pre-epoch:%d" j)
  done;
  Engine.schedule engine ~delay:15. (fun () ->
      Chaos.Invariant.reset_server inv 4;
      Deployment.join_server d 4);
  Engine.schedule engine ~delay:30. (fun () ->
      Client.signup b;
      for j = 0 to 2 do
        Client.broadcast b (Printf.sprintf "post-epoch:%d" j)
      done);
  Deployment.run d ~until:90.;
  checki "pre-join client completed" 3 (Client.completed a);
  checki "post-join client completed" 3 (Client.completed b);
  checkb "joiner caught up" false (Deployment.server_catching_up d 4);
  List.iter
    (fun s -> checki (Printf.sprintf "server %d at epoch 1" s) 1
        (Deployment.server_epoch d s))
    (Membership.active_slots (Deployment.membership d));
  (* The joiner's rank directory covers both signups: same size as the
     founding members'. *)
  let dir_size s = Directory.size (Server.directory (Deployment.servers d).(s)) in
  checki "joiner directory matches server 0" (dir_size 0) (dir_size 4);
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* Checkpoint round-trip with a changed committee: after a join and a
   leave (active count 4 -> 5 -> 4, but a different set), a cold restart
   must restore the epoch-2 membership from its checkpoint/WAL, not the
   founding one, and rejoin with dedup intact. *)
let test_checkpoint_roundtrip_changed_membership () =
  let trace = Trace.Sink.memory () in
  let cfg = store_cfg trace in
  let d = Deployment.create cfg in
  let engine = Deployment.engine d in
  let inv = Chaos.Invariant.create ~n_servers:5 in
  Chaos.Invariant.attach inv d;
  let c = Deployment.add_client d () in
  Client.signup c;
  for j = 0 to 3 do
    Client.broadcast c (Printf.sprintf "m%d" j)
  done;
  Engine.schedule engine ~delay:15. (fun () ->
      Chaos.Invariant.reset_server inv 4;
      Deployment.join_server d 4);
  Engine.schedule engine ~delay:25. (fun () -> Deployment.leave_server d 3);
  Engine.schedule engine ~delay:30. (fun () ->
      for j = 4 to 7 do
        Client.broadcast c (Printf.sprintf "m%d" j)
      done);
  Engine.schedule engine ~delay:45. (fun () ->
      Chaos.Invariant.reset_server inv 1;
      Deployment.restart_server d 1);
  Engine.schedule engine ~delay:60. (fun () ->
      Client.broadcast c "post-restart");
  Deployment.run d ~until:100.;
  checki "all broadcasts completed" 9 (Client.completed c);
  checkb "restarted server caught up" false (Deployment.server_catching_up d 1);
  let active = Membership.active_slots (Deployment.membership d) in
  Alcotest.(check (list int)) "active set is {0,1,2,4}" [ 0; 1; 2; 4 ] active;
  List.iter
    (fun s -> checki (Printf.sprintf "server %d at epoch 2" s) 2
        (Deployment.server_epoch d s))
    active;
  (* The restarted server's own membership object was rebuilt from its
     checkpoint + WAL replay, not from the live deployment view. *)
  let m1 = Server.membership (Deployment.servers d).(1) in
  Alcotest.(check (list int))
    "restored membership matches" active (Membership.active_slots m1);
  checki "restored quorum follows active count" 2 (Membership.quorum m1);
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* A joiner ordered in while partitioned from every peer: it must keep
   retrying Sync_requests (rotating peers, backing off — the sync_retry
   instants) instead of wedging, and complete its bootstrap only after
   the heal. *)
let test_join_mid_partition () =
  let trace = Trace.Sink.memory () in
  let cfg = store_cfg trace in
  let d = Deployment.create cfg in
  let engine = Deployment.engine d in
  let c = Deployment.add_client d () in
  Client.signup c;
  for j = 0 to 2 do
    Client.broadcast c (Printf.sprintf "m%d" j)
  done;
  (* Isolate the spare's node (everyone unlisted stays in group 0), then
     order it in: the join itself commits on the live majority side. *)
  Engine.schedule engine ~delay:10. (fun () ->
      Deployment.partition d [ []; [ 4 ] ]);
  Engine.schedule engine ~delay:12. (fun () -> Deployment.join_server d 4);
  let still_syncing_before_heal = ref false in
  Engine.schedule engine ~delay:35. (fun () ->
      still_syncing_before_heal := Deployment.server_catching_up d 4);
  Engine.schedule engine ~delay:40. (fun () -> Deployment.heal d);
  Deployment.run d ~until:100.;
  checkb "joiner blocked while partitioned" true !still_syncing_before_heal;
  checkb "joiner caught up after heal" false
    (Deployment.server_catching_up d 4);
  checki "joiner at epoch 1" 1 (Deployment.server_epoch d 4);
  checkb "sync retries observed (rotating-peer backoff)" true
    (count_instant trace "sync_retry" > 0);
  checki "client unaffected" 3 (Client.completed c)

let () =
  Alcotest.run "membership"
    [ ("state-machine",
       [ Alcotest.test_case "thresholds follow the active count" `Quick
           test_thresholds;
         Alcotest.test_case "ordered-command idempotence" `Quick
           test_idempotence;
         Alcotest.test_case "snapshot / restore / reset" `Quick
           test_snapshot_restore_reset ]);
      ("epoch-edges",
       [ Alcotest.test_case "rank directory across an epoch change" `Quick
           test_rank_directory_across_epoch;
         Alcotest.test_case "checkpoint round-trip with changed committee"
           `Quick test_checkpoint_roundtrip_changed_membership;
         Alcotest.test_case "join mid-partition waits for the heal" `Quick
           test_join_mid_partition ]) ]
