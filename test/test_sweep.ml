(* lib/sweep tests: manifest parse/validate round-trips and error
   reporting, deterministic grid expansion (stable order, stable content
   hashes, hash sensitivity to config changes), the pool's
   resume-skips-completed contract (including stale-output re-runs),
   per-cell isolation (same cell re-run bit-identical, neighbouring
   cells don't perturb each other), cell metrics agreeing with a direct
   runner invocation, and aggregation over a small grid. *)

module Sweep = Repro_sweep.Sweep
module M = Sweep.Manifest
module Pool = Sweep.Pool
module Aggregate = Sweep.Aggregate
module Figures = Sweep.Figures
module Json = Repro_metrics.Json
module Cell = Repro_experiments.Cell
module R = Repro_experiments.Chopchop_run
module LB = Repro_experiments.Latency_breakdown

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what e

let err_exn what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error e -> e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Small enough for CI, still a real multi-layer run. *)
let tiny_manifest_at_rate rate =
  Printf.sprintf
    {| { "name": "tiny",
         "defaults": { "underlay": "sequencer", "rate": %g, "batch": 1024,
                       "duration": 6.0, "warmup": 2.0, "cooldown": 1.0,
                       "dense_clients": 100000, "measure_clients": 2 },
         "blocks": [ { "kind": "run", "seed": [42, 43] },
                     { "kind": "chaos", "scenario": "broker-garble" } ] } |}
    rate

let tiny_manifest = tiny_manifest_at_rate 20_000.

let tiny_cell =
  { Cell.default with
    Cell.underlay = "sequencer";
    rate = 20_000.;
    batch = 1024;
    duration = 6.;
    warmup = 2.;
    cooldown = 1.;
    dense_clients = 100_000;
    measure_clients = 2 }

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chopchop-sweep-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* --- Manifest --------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m = ok_exn "parse" (M.parse tiny_manifest) in
  checks "name" "tiny" m.M.name;
  checki "cells" 3 (List.length m.M.cells);
  let labels = List.map (fun (c : M.cell) -> c.M.label) m.M.cells in
  checkb "seed 42 before seed 43 (seed axis fastest)" true
    (labels
    = [ "run sequencer s4 c32 p8B r20000 none seed42";
        "run sequencer s4 c32 p8B r20000 none seed43";
        "chaos broker-garble quick seed42" ]
    || (* cores default depends on the host vcpus; compare loosely *)
    List.for_all2
      (fun l pre -> contains ~needle:pre l)
      labels
      [ "seed42"; "seed43"; "chaos broker-garble quick seed42" ]);
  (* Round-trip: every run cell's resolved config survives to_json/of_json. *)
  List.iter
    (fun (c : M.cell) ->
      match c.M.kind with
      | M.Run cfg ->
        let cfg' = ok_exn "of_json" (Cell.of_json (Cell.to_json cfg)) in
        checkb "config round-trips" true (cfg = cfg')
      | M.Chaos _ -> ())
    m.M.cells

let test_expansion_deterministic () =
  let m1 = ok_exn "parse1" (M.parse tiny_manifest) in
  let m2 = ok_exn "parse2" (M.parse tiny_manifest) in
  checks "manifest hash stable" m1.M.hash m2.M.hash;
  checkb "cell hashes and order stable" true
    (List.map (fun (c : M.cell) -> c.M.hash) m1.M.cells
    = List.map (fun (c : M.cell) -> c.M.hash) m2.M.cells);
  (* Changing any config field must change the affected cell hashes and
     therefore the manifest hash. *)
  let changed = ok_exn "parse3" (M.parse (tiny_manifest_at_rate 21_000.)) in
  checkb "changed rate -> changed manifest hash" true
    (m1.M.hash <> changed.M.hash)

let test_expansion_order () =
  let text =
    {| { "blocks": [ { "underlay": ["sequencer", "pbft"], "seed": [1, 2] } ] } |}
  in
  let m = ok_exn "parse" (M.parse text) in
  let got =
    List.map
      (fun (c : M.cell) ->
        match c.M.kind with
        | M.Run cfg -> (cfg.Cell.underlay, Int64.to_int cfg.Cell.seed)
        | M.Chaos _ -> ("chaos", 0))
      m.M.cells
  in
  (* Canonical axis order: underlay varies slowest, seed fastest. *)
  checkb "underlay slowest, seed fastest" true
    (got = [ ("sequencer", 1); ("sequencer", 2); ("pbft", 1); ("pbft", 2) ])

let test_manifest_errors () =
  let e = err_exn "unknown manifest field" (M.parse {| { "nope": 1, "blocks": [{}] } |}) in
  checkb "names field" true (contains ~needle:"nope" e);
  let e = err_exn "unknown cell field" (M.parse {| { "blocks": [ { "wat": 1 } ] } |}) in
  checkb "lists valid cell fields" true (contains ~needle:"underlay" e);
  let e =
    err_exn "unknown underlay"
      (M.parse {| { "blocks": [ { "underlay": "raft" } ] } |})
  in
  checkb "lists valid underlays" true
    (contains ~needle:"sequencer" e && contains ~needle:"hotstuff" e);
  let e =
    err_exn "unknown scenario"
      (M.parse {| { "blocks": [ { "kind": "chaos", "scenario": "nope" } ] } |})
  in
  checkb "lists valid scenarios" true (contains ~needle:"broker-garble" e);
  let e =
    err_exn "unknown kind" (M.parse {| { "blocks": [ { "kind": "walk" } ] } |})
  in
  checkb "lists valid kinds" true (contains ~needle:"run, chaos" e);
  let e = err_exn "no blocks" (M.parse {| { "blocks": [] } |}) in
  checkb "no blocks" true (contains ~needle:"no blocks" e);
  let e =
    err_exn "duplicate cells"
      (M.parse {| { "blocks": [ { "seed": 7 }, { "seed": 7 } ] } |})
  in
  checkb "duplicate detected" true (contains ~needle:"duplicate" e);
  let e =
    err_exn "bad window"
      (M.parse {| { "blocks": [ { "duration": 1.0, "warmup": 2.0 } ] } |})
  in
  checkb "window validated" true (contains ~needle:"duration" e)

(* --- Cells ------------------------------------------------------------ *)

let test_cell_matches_direct_run () =
  let out = Cell.run tiny_cell in
  let result, _, _ = LB.capture ~params:(Cell.params_of tiny_cell) () in
  Alcotest.(check (float 0.))
    "cell throughput equals direct runner invocation" result.R.throughput
    (List.assoc "throughput_ops" out.Cell.metrics);
  checkb "sim events counted" true (out.Cell.sim_events > 0)

let test_cell_isolation () =
  let m = ok_exn "parse" (M.parse tiny_manifest) in
  let cells = Array.of_list m.M.cells in
  let doc i = Json.to_string_pretty (Pool.run_cell cells.(i)) in
  let a1 = doc 0 in
  let b = doc 1 in
  let chaos1 = doc 2 in
  (* Neighbouring cells (including a chaos run) must not perturb a
     cell's result: re-running cell 0 after the others is bit-identical. *)
  let a2 = doc 0 in
  checks "same cell re-run bit-identical" a1 a2;
  checks "chaos cell re-run bit-identical" chaos1 (doc 2);
  (* Cells differing only in seed are distinct cells with distinct
     hashes and distinct output documents. *)
  checkb "seed-42 and seed-43 outputs differ" true (a1 <> b);
  checkb "seed-42 and seed-43 hashes differ" true
    ((cells.(0) : M.cell).M.hash <> cells.(1).M.hash)

(* --- Pool + resume ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_pool_resume () =
  let m = ok_exn "parse" (M.parse tiny_manifest) in
  let out_dir = temp_dir () in
  let outcomes reports =
    List.map (fun r -> r.Pool.r_outcome) reports
  in
  let r1 = Pool.run ~serial:true ~out_dir m in
  checki "all cells reported" 3 (List.length r1);
  checkb "first run completes every cell" true
    (List.for_all (fun o -> o = Pool.Completed) (outcomes r1));
  let files =
    List.map (fun c -> read_file (Pool.cell_path ~out_dir m c)) m.M.cells
  in
  (* Second invocation: everything is already on disk, nothing re-runs,
     outputs untouched. *)
  let r2 = Pool.run ~serial:true ~out_dir m in
  checkb "second run skips every cell" true
    (List.for_all (fun o -> o = Pool.Skipped) (outcomes r2));
  List.iter2
    (fun c before ->
      checks "cell output unchanged by resume" before
        (read_file (Pool.cell_path ~out_dir m c)))
    m.M.cells files;
  (* A truncated / stale output is not trusted: that cell re-runs, the
     rest still skip, and the re-run reproduces the original bytes. *)
  let victim = List.hd m.M.cells in
  let oc = open_out (Pool.cell_path ~out_dir m victim) in
  output_string oc "{ \"hash\": \"bogus\" }";
  close_out oc;
  let r3 = Pool.run ~serial:true ~out_dir m in
  checkb "stale cell re-ran" true
    (List.exists (fun o -> o = Pool.Completed) (outcomes r3));
  checki "only the stale cell re-ran" 2
    (List.length (List.filter (fun o -> o = Pool.Skipped) (outcomes r3)));
  checks "re-run reproduces the original bytes (deterministic)"
    (List.hd files)
    (read_file (Pool.cell_path ~out_dir m victim))

(* --- Aggregate + figures ---------------------------------------------- *)

let test_aggregate () =
  let m = ok_exn "parse" (M.parse tiny_manifest) in
  let out_dir = temp_dir () in
  ignore (Pool.run ~serial:true ~out_dir m);
  let path = Aggregate.write ~out_dir m in
  let doc = Json.of_file ~path in
  let num k = Option.bind (Json.member k doc) Json.to_float in
  checkb "cells_total" true (num "cells_total" = Some 3.);
  checkb "cells_present" true (num "cells_present" = Some 3.);
  (match Json.member "cells" doc with
   | Some (Json.List docs) ->
     checki "one entry per cell" 3 (List.length docs);
     List.iter2
       (fun (c : M.cell) d ->
         match Json.member "hash" d with
         | Some (Json.Str h) -> checks "manifest order" c.M.hash h
         | _ -> Alcotest.fail "cell entry lacks a hash")
       m.M.cells docs
   | _ -> Alcotest.fail "no cells array");
  (* The figure renderer consumes the aggregate and produces the grid
     and chaos tables. *)
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Figures.render fmt doc;
  Format.pp_print_flush fmt ();
  let rendered = Buffer.contents buf in
  checkb "throughput grid rendered" true
    (contains ~needle:"Throughput / latency grid" rendered);
  checkb "chaos table rendered" true
    (contains ~needle:"Chaos outcomes" rendered);
  checkb "chaos verdict present" true (contains ~needle:"PASS" rendered);
  (* Aggregating with one output missing yields a missing stub, counted. *)
  Sys.remove (Pool.cell_path ~out_dir m (List.hd m.M.cells));
  let doc = Aggregate.collect ~out_dir m in
  checkb "missing cell counted" true
    (Option.bind (Json.member "cells_present" doc) Json.to_float = Some 2.)

let () =
  Alcotest.run "sweep"
    [ ( "manifest",
        [ Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_expansion_deterministic;
          Alcotest.test_case "axis order" `Quick test_expansion_order;
          Alcotest.test_case "errors" `Quick test_manifest_errors ] );
      ( "cells",
        [ Alcotest.test_case "matches direct run" `Quick test_cell_matches_direct_run;
          Alcotest.test_case "isolation" `Quick test_cell_isolation ] );
      ( "pool",
        [ Alcotest.test_case "resume" `Quick test_pool_resume ] );
      ( "aggregate",
        [ Alcotest.test_case "three cells" `Quick test_aggregate ] ) ]
