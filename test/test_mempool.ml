(* Tests for the Narwhal-Bullshark baseline model: delivery of injected
   load, agreement on delivered counts across groups, authentication cost
   effect, crash tolerance, latency sanity. *)

open Repro_sim
module N = Repro_mempool.Narwhal

let checkb = Alcotest.check Alcotest.bool

type run_result = {
  delivered : int array;
  in_window : int; (* delivered at group 0 before load ended *)
  latency_mean : float;
  elapsed : float; (* duration of load *)
}

let run ?(n = 4) ?(authenticate = false) ?(workers = 1) ?(rate = 1000)
    ?(dur = 10.) ?(crash = []) ?(seed = 9L) () =
  let in_window = ref 0 in
  let engine = Engine.create ~seed () in
  let net = Net.create engine () in
  let regions = Array.of_list (Region.server_regions_for n) in
  let groups = Array.make n None in
  let lat_sum = ref 0. and lat_n = ref 0 in
  for i = 0 to n - 1 do
    Net.add_node net ~id:i ~region:regions.(i)
      ~handler:(fun ~src m ->
        match groups.(i) with Some g -> N.receive g ~src m | None -> ())
      ()
  done;
  for i = 0 to n - 1 do
    let cpu = Cpu.create engine ~cores:Cost.vcpus () in
    let cfg =
      { (N.default_config ~n ~msg_bytes:8 ~authenticate) with
        workers_per_group = workers }
    in
    let g =
      N.create ~engine ~cpu ~config:cfg ~self:i
        ~send:(fun ~dst ~bytes m -> Net.send net ~src:i ~dst ~bytes m)
        ~on_deliver:(fun ~count ~inject_time ->
          if i = 0 then begin
            lat_sum := !lat_sum +. ((Engine.now engine -. inject_time) *. float_of_int count);
            lat_n := !lat_n + count;
            (* In-window deliveries only: the post-load drain would let an
               overloaded configuration catch up and mask saturation. *)
            if Engine.now engine <= dur then in_window := !in_window + count
          end)
        ()
    in
    groups.(i) <- Some g
  done;
  let chunk = max 1 (rate / 10) in
  Engine.every engine ~period:0.1 ~until:dur (fun () ->
      Array.iteri
        (fun i g ->
          match g with
          | Some g when not (List.mem i crash) -> N.inject g ~count:chunk
          | _ -> ())
        groups);
  List.iter
    (fun i ->
      Engine.schedule engine ~delay:(dur /. 2.) (fun () ->
          match groups.(i) with Some g -> N.crash g | None -> ()))
    crash;
  Engine.run ~until:(dur +. 20.) engine;
  { delivered = Array.map (function Some g -> N.delivered g | None -> 0) groups;
    in_window = !in_window;
    latency_mean = (if !lat_n = 0 then 0. else !lat_sum /. float_of_int !lat_n);
    elapsed = dur }

let test_delivers_everything () =
  let r = run () in
  (* ~1000 op/s per group x 4 groups x 10 s *)
  let expect = 4 * 1000 * 10 in
  Array.iteri
    (fun i d ->
      checkb (Printf.sprintf "group %d delivered all (got %d)" i d) true
        (d >= expect - (4 * 100) && d <= expect))
    r.delivered

let test_agreement_across_groups () =
  let r = run ~rate:5000 () in
  let counts = Array.to_list r.delivered |> List.sort_uniq compare in
  (* All groups commit the same DAG prefix; allow the in-flight tail. *)
  match counts with
  | [ _ ] -> ()
  | [ a; b ] -> checkb "within one round of each other" true (b - a < 3 * 5000)
  | _ -> Alcotest.failf "groups diverged: %s"
           (String.concat "," (List.map string_of_int counts))

let test_latency_sane () =
  let r = run () in
  checkb
    (Printf.sprintf "latency within [0.3, 5] s (got %.2f)" r.latency_mean)
    true
    (r.latency_mean > 0.3 && r.latency_mean < 5.)

let test_authentication_throttles () =
  (* At a per-group rate far above the signature-verification budget, the
     sig variant delivers an order of magnitude less (in-window). *)
  let plain = run ~rate:500_000 ~dur:10. () in
  let signed = run ~authenticate:true ~rate:500_000 ~dur:10. () in
  let p = plain.in_window and s = signed.in_window in
  checkb (Printf.sprintf "sig drops throughput (%d vs %d)" p s) true
    (float_of_int p > 4. *. float_of_int s)

let test_workers_scale () =
  let w1 = run ~authenticate:true ~rate:500_000 ~dur:10. () in
  let w2 = run ~authenticate:true ~workers:2 ~rate:500_000 ~dur:10. () in
  checkb
    (Printf.sprintf "2 workers > 1.5x of 1 worker (%d vs %d)" w2.in_window w1.in_window)
    true
    (float_of_int w2.in_window > 1.5 *. float_of_int w1.in_window)

let test_crash_tolerance () =
  (* n = 4 tolerates one crashed group: the rest keep committing. *)
  let r = run ~rate:1000 ~dur:10. ~crash:[ 3 ] () in
  checkb
    (Printf.sprintf "survivors keep delivering (%d)" r.delivered.(0))
    true
    (r.delivered.(0) > 3 * 1000 * 4)

let () =
  Alcotest.run "mempool"
    [ ("narwhal-bullshark",
       [ Alcotest.test_case "delivers injected load" `Quick test_delivers_everything;
         Alcotest.test_case "agreement across groups" `Quick test_agreement_across_groups;
         Alcotest.test_case "latency sane" `Quick test_latency_sane;
         Alcotest.test_case "authentication throttles" `Slow test_authentication_throttles;
         Alcotest.test_case "workers scale a group" `Slow test_workers_scale;
         Alcotest.test_case "crash tolerance" `Quick test_crash_tolerance ]) ]
