(* Tests for the simulation substrate: deterministic RNG, event engine
   semantics, the geographic model, network timing, CPU accounting and
   statistics. *)

open Repro_sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    checkb "same stream" true (Rng.next64 a = Rng.next64 b)
  done;
  let c = Rng.create 100L in
  checkb "different seed different stream" false (Rng.next64 a = Rng.next64 c)

let test_rng_split_independent () =
  let root = Rng.create 1L in
  let a = Rng.split root and b = Rng.split root in
  checkb "split streams differ" false (Rng.next64 a = Rng.next64 b)

let test_rng_bounds () =
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    assert (x >= 0 && x < 17);
    let y = Rng.int_in r 3 9 in
    assert (y >= 3 && y <= 9);
    let f = Rng.float r 2.5 in
    assert (f >= 0. && f < 2.5);
    let e = Rng.exponential r ~mean:1.0 in
    assert (e >= 0.)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "empirical mean near 3" true (abs_float (mean -. 3.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Rng.create 2L in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  Array.sort compare b;
  checkb "shuffle is a permutation" true (a = b)

(* --- Engine ------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:10.0 (fun () -> fired := true);
  Engine.run ~until:5.0 e;
  checkb "not fired before until" false !fired;
  checkf "clock clamped" 5.0 (Engine.now e);
  Engine.run ~until:20.0 e;
  checkb "fires later" true !fired

let test_engine_timer_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.timer e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel tm;
  Engine.run e;
  checkb "cancelled timer silent" false !fired;
  Engine.cancel tm (* cancelling twice is fine *)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick n () =
    if n > 0 then begin
      incr count;
      Engine.schedule e ~delay:1.0 (tick (n - 1))
    end
  in
  Engine.schedule e ~delay:0.0 (tick 10);
  Engine.run e;
  checki "chained events" 10 !count;
  checkf "clock advanced" 10.0 (Engine.now e)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:1.0 ~until:5.5 (fun () -> incr count);
  Engine.run e;
  checki "periodic fires floor(5.5)" 5 !count

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun () -> ()))

let test_engine_heap_stress () =
  let e = Engine.create () in
  let r = Rng.create 3L in
  let last = ref (-1.0) in
  let ok = ref true in
  for _ = 1 to 5000 do
    let t = Rng.float r 1000. in
    Engine.schedule_at e ~time:t (fun () ->
        if Engine.now e < !last then ok := false;
        last := Engine.now e)
  done;
  Engine.run e;
  checkb "monotone processing" true !ok

let test_engine_pending_live () =
  (* Cancelled timers stay queued until their deadline but must not count
     as pending: the [engine.queue_depth] probes report live events. *)
  let e = Engine.create () in
  checki "empty" 0 (Engine.pending e);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  let tms = List.init 10 (fun _ -> Engine.timer e ~delay:5.0 (fun () -> ())) in
  checki "all live" 11 (Engine.pending e);
  checki "high-water tracks live" 11 (Engine.max_pending e);
  List.iteri (fun i tm -> if i < 6 then Engine.cancel tm) tms;
  checki "cancelled leave the live count" 5 (Engine.pending e);
  checki "high-water unchanged by cancel" 11 (Engine.max_pending e);
  Engine.run e;
  checkf "dead slots still advance the clock" 5.0 (Engine.now e);
  checki "drained" 0 (Engine.pending e)

let test_engine_closure_collectable () =
  (* A cancelled timer's closure (and everything it captures) must be
     collectable immediately — and a dispatched event's closure once its
     queue slot is vacated — rather than lingering in the heap array. *)
  let e = Engine.create () in
  let w : bytes Weak.t = Weak.create 2 in
  let mk_cancelled () =
    let big = Bytes.make 65536 'x' in
    Weak.set w 0 (Some big);
    Engine.timer e ~delay:1.0 (fun () -> ignore (Bytes.get big 0))
  in
  let mk_dispatched () =
    let big = Bytes.make 65536 'y' in
    Weak.set w 1 (Some big);
    Engine.schedule e ~delay:2.0 (fun () -> ignore (Bytes.get big 0))
  in
  let tm = mk_cancelled () in
  mk_dispatched ();
  Engine.cancel tm;
  Gc.full_major ();
  checkb "cancelled closure collectable before the deadline" true
    (Weak.get w 0 = None);
  Engine.run e;
  Gc.full_major ();
  checkb "dispatched closure collectable after its slot is vacated" true
    (Weak.get w 1 = None)

let test_engine_every_boundary () =
  (* Pin the boundary semantics of [every ~until]: a tick landing exactly
     at [stop] fires by default (inclusive); [~inclusive:false] stops
     strictly before. *)
  let fires inclusive until =
    let e = Engine.create () in
    let n = ref 0 in
    Engine.every ~inclusive e ~period:1.0 ~until (fun () -> incr n);
    Engine.run e;
    !n
  in
  checki "tick exactly at stop fires (inclusive default)" 5 (fires true 5.0);
  checki "stop between ticks" 5 (fires true 5.5);
  checki "exclusive stops strictly before" 4 (fires false 5.0);
  checki "exclusive with off-grid stop" 5 (fires false 5.5)

(* A randomized schedule/cancel workload whose handlers draw from a
   private stream and log (tag, now): the log is identical between queue
   implementations iff the dispatch sequences are identical, since each
   handler's draws depend on every dispatch before it. *)
let drive_workload queue seed =
  let e = Engine.create ~queue () in
  let r = Rng.create seed in
  let log = ref [] in
  let timers = ref [] in
  let emit tag = log := (tag, Engine.now e) :: !log in
  for i = 0 to 399 do
    Engine.schedule_at e ~time:(Rng.float r 60.) (fun () ->
        emit i;
        if i mod 3 = 0 then
          (* dense near-future churn (calendar ring) *)
          Engine.schedule e ~delay:(Rng.float r 0.01) (fun () -> emit (1000 + i));
        if i mod 4 = 0 then
          (* far-future events (overflow heap + migration) *)
          Engine.schedule e ~delay:(10. +. Rng.float r 50.) (fun () ->
              emit (2000 + i));
        if i mod 5 = 0 then
          timers :=
            Engine.timer e ~delay:(Rng.float r 20.) (fun () -> emit (3000 + i))
            :: !timers;
        if i mod 7 = 0 then (
          match !timers with
          | tm :: rest ->
            Engine.cancel tm;
            timers := rest
          | [] -> ()))
  done;
  (* Clamped run, then backdated inserts: the calendar cursor has scanned
     past [until] and must rewind correctly. *)
  Engine.run ~until:30. e;
  Engine.schedule e ~delay:0.5 (fun () -> emit 5001);
  Engine.schedule e ~delay:(Rng.float r 5.) (fun () -> emit 5002);
  Engine.run e;
  (List.rev !log, Engine.pending e)

let test_engine_queue_equivalence () =
  for seed = 1 to 8 do
    let seed = Int64.of_int seed in
    let log_h, pend_h = drive_workload Engine.Heap seed in
    let log_c, pend_c = drive_workload Engine.Calendar seed in
    checkb "identical dispatch sequence" true (log_h = log_c);
    checki "both drained" pend_h pend_c
  done

let test_engine_pool_reuse () =
  (* Steady-state churn must recycle records: fresh allocations are
     bounded by the peak live depth, not the event count. *)
  let e = Engine.create () in
  let n = ref 0 in
  let rec self () =
    incr n;
    if !n < 10_000 then Engine.schedule e ~delay:0.25 self
  in
  for _ = 1 to 8 do
    Engine.schedule e ~delay:0.1 self
  done;
  Engine.run e;
  let fresh, reused = Engine.pool_stats e in
  checkb "records recycled" true (reused > 0);
  checkb "fresh bounded by peak depth" true (fresh <= Engine.max_pending e + 8);
  (* The legacy heap never pools. *)
  let eh = Engine.create ~queue:Engine.Heap () in
  for _ = 1 to 50 do
    Engine.schedule eh ~delay:1.0 (fun () -> ())
  done;
  Engine.run eh;
  let fresh_h, reused_h = Engine.pool_stats eh in
  checki "heap mode allocates per event" 50 fresh_h;
  checki "heap mode never reuses" 0 reused_h

(* --- Region ------------------------------------------------------------- *)

let test_region_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb "latency symmetric" true
            (Region.latency a b = Region.latency b a))
        Region.all)
    Region.all

let test_region_plausible () =
  let lat = Region.latency Region.Sydney Region.Ireland in
  checkb "Sydney-Ireland one-way 80-200 ms" true (lat > 0.08 && lat < 0.2);
  let local = Region.latency Region.Paris Region.Paris in
  checkb "intra-region sub-millisecond" true (local <= 0.0005);
  checkb "London-Paris < London-Tokyo" true
    (Region.latency Region.London Region.Paris
     < Region.latency Region.London Region.Tokyo)

let test_region_server_assignment () =
  checki "8 servers in 8 regions" 8
    (List.length (List.sort_uniq compare (Region.server_regions_for 8)));
  checki "64 servers round-robin over 14" 14
    (List.length (List.sort_uniq compare (Region.server_regions_for 64)));
  checki "64 assignments" 64 (List.length (Region.server_regions_for 64))

(* --- Net ------------------------------------------------------------------ *)

let test_net_delivery_time () =
  let e = Engine.create () in
  let net = Net.create e () in
  let got = ref (-1.0) in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.London
    ~handler:(fun ~src:_ () -> got := Engine.now e)
    ();
  Net.send net ~src:0 ~dst:1 ~bytes:1000 ();
  Engine.run e;
  let expect =
    (8. *. 1000. /. Net.server_default_egress_bps)
    +. Region.latency Region.Paris Region.London
    +. (8. *. 1000. /. Net.server_default_ingress_bps)
  in
  checkb "latency + serialisation both ends" true (abs_float (!got -. expect) < 1e-9)

let test_net_egress_serializes () =
  let e = Engine.create () in
  let net = Net.create e () in
  let times = ref [] in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris
    ~handler:(fun ~src:_ () -> times := Engine.now e :: !times)
    ();
  let big = 10_000_000 in
  Net.send net ~src:0 ~dst:1 ~bytes:big ();
  Net.send net ~src:0 ~dst:1 ~bytes:big ();
  Engine.run e;
  match List.rev !times with
  | [ t1; t2 ] ->
    let service = 8. *. float_of_int big /. Net.server_default_egress_bps in
    checkb "second waits for first" true (t2 -. t1 >= service *. 0.99)
  | _ -> Alcotest.fail "expected two deliveries"

let test_net_disconnect () =
  let e = Engine.create () in
  let net = Net.create e () in
  let got = ref 0 in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> incr got) ();
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Net.disconnect net 1;
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Engine.run e;
  checki "nothing delivered to crashed node" 0 !got;
  checkb "is_connected reflects state" false (Net.is_connected net 1)

let test_net_counters () =
  let e = Engine.create () in
  let net = Net.create e () in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> ()) ();
  Net.send net ~src:0 ~dst:1 ~bytes:123 ();
  Net.multicast net ~src:0 ~dsts:[ 1; 1 ] ~bytes:10 ();
  Engine.run e;
  checki "sent" 143 (Net.bytes_sent net 0);
  checki "received" 143 (Net.bytes_received net 1)

let test_net_loss () =
  let e = Engine.create () in
  let net = Net.create e ~loss:1.0 () in
  let got = ref 0 in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> incr got) ();
  Net.send_lossy net ~src:0 ~dst:1 ~bytes:10 ();
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Engine.run e;
  checki "lossy dropped, reliable passed" 1 !got

let test_net_reconnect () =
  let e = Engine.create () in
  let net = Net.create e () in
  let got = ref 0 in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> incr got) ();
  Net.disconnect net 1;
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Net.reconnect net 1;
  checkb "is_connected after reconnect" true (Net.is_connected net 1);
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Engine.run e;
  checki "dropped while down, delivered after reconnect" 1 !got

let test_net_partition_heal () =
  let e = Engine.create () in
  let net = Net.create e () in
  let got = Array.make 3 0 in
  for i = 0 to 2 do
    Net.add_node net ~id:i ~region:Region.Paris
      ~handler:(fun ~src:_ () -> got.(i) <- got.(i) + 1) ()
  done;
  (* Node 2 isolated; 0 and 1 (implicit group 0) still talk. *)
  Net.partition net [ []; [ 2 ] ];
  checkb "partitioned" true (Net.partitioned net);
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Net.send net ~src:0 ~dst:2 ~bytes:10 ();
  Net.send_lossy net ~src:2 ~dst:0 ~bytes:10 ();
  Engine.run e;
  checki "same side delivered" 1 got.(1);
  checki "cross cut dropped (to minority)" 0 got.(2);
  checki "cross cut dropped (from minority)" 0 got.(0);
  Net.heal net;
  checkb "healed" false (Net.partitioned net);
  Net.send net ~src:0 ~dst:2 ~bytes:10 ();
  Engine.run e;
  checki "delivered after heal" 1 got.(2)

let test_net_link_loss () =
  let e = Engine.create () in
  let net = Net.create e () in
  let got = ref 0 in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> incr got) ();
  (* Directed: only the 0 -> 1 direction loses packets. *)
  Net.set_link_loss net ~src:0 ~dst:1 1.0;
  Net.send_lossy net ~src:0 ~dst:1 ~bytes:10 ();
  Net.send_lossy net ~src:1 ~dst:0 ~bytes:10 ();
  Net.send net ~src:0 ~dst:1 ~bytes:10 ();
  Engine.run e;
  checki "reliable send unaffected by link loss" 1 !got;
  Net.set_link_loss net ~src:0 ~dst:1 0.0;
  Net.send_lossy net ~src:0 ~dst:1 ~bytes:10 ();
  Engine.run e;
  checki "cleared override delivers again" 2 !got

let test_net_degrade_link () =
  let e = Engine.create () in
  let net = Net.create e () in
  let at = ref 0. in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ _ -> ()) ();
  Net.add_node net ~id:1 ~region:Region.Paris ~handler:(fun ~src:_ () -> at := Engine.now e) ();
  Net.send net ~src:0 ~dst:1 ~bytes:1000 ();
  Engine.run e;
  let baseline = !at in
  Net.degrade_link net ~src:0 ~dst:1 ~extra_latency:0.25;
  Net.send net ~src:0 ~dst:1 ~bytes:1000 ();
  Engine.run e;
  checkf "exactly the extra latency added" (baseline +. 0.25) (!at -. baseline)

let test_net_duplicate_node () =
  let e = Engine.create () in
  let net = Net.create e () in
  Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ () -> ()) ();
  Alcotest.check_raises "duplicate id" (Invalid_argument "Net.add_node: duplicate id")
    (fun () ->
      Net.add_node net ~id:0 ~region:Region.Paris ~handler:(fun ~src:_ () -> ()) ())

(* --- Cpu -------------------------------------------------------------------- *)

let test_cpu_fifo () =
  let e = Engine.create () in
  let cpu = Cpu.create e () in
  let log = ref [] in
  Cpu.submit cpu ~work:(Cpu.serial 2.0) (fun () -> log := (1, Engine.now e) :: !log);
  Cpu.submit cpu ~work:(Cpu.serial 1.0) (fun () -> log := (2, Engine.now e) :: !log);
  Engine.run e;
  (match List.rev !log with
   | [ (1, t1); (2, t2) ] ->
     checkf "first job at its cost" 2.0 t1;
     checkf "second queues behind" 3.0 t2
   | _ -> Alcotest.fail "two completions expected");
  checkf "busy seconds" 3.0 (Cpu.busy_seconds cpu)

let test_cpu_capacity () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~capacity:0.5 () in
  let t = ref 0. in
  Cpu.submit cpu ~work:(Cpu.serial 1.0) (fun () -> t := Engine.now e);
  Engine.run e;
  checkf "half capacity doubles duration" 2.0 !t

let test_cpu_utilization () =
  let e = Engine.create () in
  let cpu = Cpu.create e () in
  Cpu.charge cpu ~work:(Cpu.serial 1.0);
  Engine.schedule e ~delay:4.0 (fun () -> ());
  Engine.run e;
  checkf "25% busy over 4s" 0.25 (Cpu.utilization cpu ~since:(Cpu.boot cpu))

let test_cpu_windowed_utilization () =
  (* The satellite bugfix: a window starting after boot must divide the
     work executed IN the window by the window — not lifetime busy
     seconds by the window (which overcounted until the min-1.0 clamp
     hid it). *)
  let e = Engine.create () in
  let cpu = Cpu.create e () in
  Cpu.charge cpu ~work:(Cpu.serial 2.0);
  let mid = ref None in
  Engine.schedule e ~delay:4.0 (fun () -> mid := Some (Cpu.mark cpu));
  Engine.schedule e ~delay:8.0 (fun () -> ());
  Engine.run e;
  let mid = Option.get !mid in
  (* All 2 s of work ran in [0, 4]; the [4, 8] window executed nothing.
     The old lifetime/window formula would have reported 2/4 = 0.5. *)
  checkf "post-boot window is honest" 0. (Cpu.utilization cpu ~since:mid);
  checkf "boot window averages down" 0.25
    (Cpu.utilization cpu ~since:(Cpu.boot cpu))

let test_cpu_parallel_splits () =
  (* Divisible work waterfills across idle lanes: 4 lane-seconds over 4
     idle lanes finish in 1 s, the same job on 1 core takes 4 s. *)
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:4 () in
  let t = ref 0. in
  Cpu.submit cpu ~work:(Cpu.parallel 4.0) (fun () -> t := Engine.now e);
  Engine.run e;
  checkf "parallel job splits over 4 lanes" 1.0 !t;
  checkf "all lane-seconds charged" 4.0 (Cpu.busy_seconds cpu)

let test_cpu_serial_occupies_one_lane () =
  (* A serial job cannot use idle lanes: same duration on 1 or 4 cores,
     and the other lanes remain free for concurrent work. *)
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:4 () in
  let t_serial = ref 0. and t_par = ref 0. in
  Cpu.submit cpu ~work:(Cpu.serial 2.0) (fun () -> t_serial := Engine.now e);
  Cpu.submit cpu ~work:(Cpu.parallel 3.0) (fun () -> t_par := Engine.now e);
  Engine.run e;
  checkf "serial ignores idle lanes" 2.0 !t_serial;
  (* 3 lane-seconds over the 3 remaining idle lanes. *)
  checkf "parallel work fills the other lanes" 1.0 !t_par

let test_cpu_lane_fairness () =
  (* Waterfill levels lanes: after an uneven serial load, parallel work
     goes to the idle lanes first and every participating lane finishes
     at the same instant. *)
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 () in
  Cpu.charge cpu ~work:(Cpu.serial 2.0); (* one lane busy until 2 *)
  let t = ref 0. in
  (* 2 lane-seconds: the idle lane runs it [0,2] alone — the fill level
     2.0 equals the serial lane's ready time, so that lane is untouched. *)
  Cpu.submit cpu ~work:(Cpu.parallel 2.0) (fun () -> t := Engine.now e);
  checkf "both lanes level at 2" 2.0 (Cpu.lane_backlog cpu 0);
  checkf "both lanes level at 2 (other)" 2.0 (Cpu.lane_backlog cpu 1);
  (* A second parallel job waterfills both lanes evenly: +1 s each. *)
  Cpu.charge cpu ~work:(Cpu.parallel 2.0);
  checkf "waterfill levels both lanes" 3.0 (Cpu.busy_until cpu);
  checkf "lane 0 backlog leveled" 3.0 (Cpu.lane_backlog cpu 0);
  checkf "lane 1 backlog leveled" 3.0 (Cpu.lane_backlog cpu 1);
  Engine.run e;
  checkf "first parallel finished at its fill level" 2.0 !t

let test_cpu_serial_after_parallel () =
  (* A mixed job runs its serial tail after the parallel phase: total
     completion = parallel fill level + serial duration. *)
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:4 () in
  let t = ref 0. in
  Cpu.submit cpu ~work:(Cpu.work ~parallel:4.0 ~serial:0.5)
    (fun () -> t := Engine.now e);
  Engine.run e;
  checkf "serial tail after the fill level" 1.5 !t;
  checkf "charge is parallel + serial" 4.5 (Cpu.busy_seconds cpu)

let test_cpu_backlog_accounting () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2 () in
  Cpu.charge cpu ~work:(Cpu.parallel 4.0); (* 2 s on each lane *)
  Cpu.charge cpu ~work:(Cpu.serial 1.0); (* lane 0: [2, 3] *)
  checkf "backlog sums queued lane-seconds" 5.0 (Cpu.backlog cpu);
  checkf "drain time is the max lane" 3.0 (Cpu.busy_until cpu);
  checkf "nothing executed yet" 0. (Cpu.executed_seconds cpu);
  Engine.schedule e ~delay:1.0 (fun () ->
      (* Both lanes ran solid for 1 s. *)
      checkf "executed grows with the clock" 2.0 (Cpu.executed_seconds cpu);
      checkf "backlog shrinks" 3.0 (Cpu.backlog cpu));
  Engine.run e;
  checkf "all work executed" 5.0 (Cpu.executed_seconds cpu);
  checkf "backlog drains" 0. (Cpu.backlog cpu)

let test_cpu_one_core_matches_serial_queue () =
  (* cores=1 must reproduce the old single-queue semantics exactly: same
     completion instants, same busy accounting, for any mix of classes. *)
  let run_with mk_cpu =
    let e = Engine.create ~seed:7L () in
    let cpu = mk_cpu e in
    let log = ref [] in
    let job i w = Cpu.submit cpu ~work:w (fun () -> log := (i, Engine.now e) :: !log) in
    job 1 (Cpu.serial 0.5);
    job 2 (Cpu.parallel 0.25);
    Engine.schedule e ~delay:0.1 (fun () -> job 3 (Cpu.work ~serial:0.2 ~parallel:0.3));
    Engine.run e;
    (List.rev !log, Cpu.busy_seconds cpu, Cpu.busy_until cpu)
  in
  let log1, busy1, until1 = run_with (fun e -> Cpu.create e ~cores:1 ()) in
  let logd, busyd, untild = run_with (fun e -> Cpu.create e ()) in
  checkb "explicit cores=1 = default" true (log1 = logd);
  checkf "busy equal" busyd busy1;
  checkf "drain equal" untild until1;
  (match log1 with
   | [ (1, t1); (2, t2); (3, t3) ] ->
     checkf "fifo job 1" 0.5 t1;
     checkf "fifo job 2" 0.75 t2;
     checkf "fifo job 3" 1.25 t3
   | _ -> Alcotest.fail "three completions expected")

(* --- Stats -------------------------------------------------------------------- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  checkf "mean" 2.5 (Stats.Summary.mean s);
  checkb "stddev" true (abs_float (Stats.Summary.stddev s -. 1.1180339887) < 1e-6);
  checkf "min" 1. (Stats.Summary.min s);
  checkf "max" 4. (Stats.Summary.max s);
  checki "count" 4 (Stats.Summary.count s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  checkf "empty mean 0" 0. (Stats.Summary.mean s);
  checkf "empty percentile 0" 0. (Stats.Summary.percentile s 0.9)

let test_summary_percentile_cache () =
  (* The sorted array is cached between queries and must be invalidated
     by add, or interleaved add/percentile returns stale ranks. *)
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 5.; 1.; 3. ];
  checkf "p50 before" 3. (Stats.Summary.percentile s 0.5);
  checkf "p100 before" 5. (Stats.Summary.percentile s 1.0);
  List.iter (Stats.Summary.add s) [ 9.; 7. ];
  checkf "p50 sees new samples" 5. (Stats.Summary.percentile s 0.5);
  checkf "p100 sees new max" 9. (Stats.Summary.percentile s 1.0);
  checkf "repeat query stable" 9. (Stats.Summary.percentile s 1.0)

let test_summary_nearest_rank () =
  (* Percentile rounds to the nearest rank instead of truncating toward
     the low sample: p75 of two samples is the upper one, and p90 of
     [0..3] rounds 2.7 up to index 3. *)
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2. ];
  checkf "p75 of two rounds up" 2. (Stats.Summary.percentile s 0.75);
  checkf "p25 of two rounds down" 1. (Stats.Summary.percentile s 0.25);
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 0.; 1.; 2.; 3. ];
  checkf "p90 rounds 2.7 to rank 3" 3. (Stats.Summary.percentile s 0.9);
  checkf "p0 is the min" 0. (Stats.Summary.percentile s 0.0);
  (* Many samples: growth across several buffer doublings keeps every
     sample. *)
  let s = Stats.Summary.create () in
  for i = 1 to 999 do
    Stats.Summary.add s (float_of_int i)
  done;
  checki "all retained" 999 (Stats.Summary.count s);
  checkf "p50 of 1..999" 500. (Stats.Summary.percentile s 0.5)

let test_throughput_window () =
  let e = Engine.create () in
  let tp = Stats.Throughput.create e ~warmup:2.0 ~cooldown:2.0 ~duration:10.0 in
  for i = 0 to 9 do
    Engine.schedule e ~delay:(float_of_int i +. 0.5) (fun () -> Stats.Throughput.record tp 10)
  done;
  Engine.run e;
  checki "only window counted" 60 (Stats.Throughput.total_in_window tp);
  checkf "rate over 6s window" 10.0 (Stats.Throughput.rate tp)

let suite_stats_props =
  [ qtest "percentile is monotone" QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 100.))
      (fun xs ->
        let s = Stats.Summary.create () in
        List.iter (Stats.Summary.add s) xs;
        Stats.Summary.percentile s 0.1 <= Stats.Summary.percentile s 0.9);
    qtest "mean within min/max" QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-50.) 50.))
      (fun xs ->
        let s = Stats.Summary.create () in
        List.iter (Stats.Summary.add s) xs;
        Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
        && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9) ]

(* --- Rudp -------------------------------------------------------------------- *)

let mk_rudp_pair ~loss ~seed =
  (* A loopback lossy channel between one sender and one receiver. *)
  let e = Engine.create ~seed () in
  let r = Rng.create seed in
  let delivered = ref [] in
  let recv_cell = ref None in
  let ack_to_sender = ref (fun (_ : int) -> ()) in
  let sender_cell = ref None in
  let transmit pkt =
    (* Simulate the lossy link with a delay. *)
    if Rng.float r 1.0 >= loss then
      Engine.schedule e ~delay:0.05 (fun () ->
          match !recv_cell with Some rc -> Rudp.receiver_on_data rc pkt | None -> ())
  in
  let send_ack seq =
    if Rng.float r 1.0 >= loss then
      Engine.schedule e ~delay:0.05 (fun () -> !ack_to_sender seq)
  in
  let sender = Rudp.sender ~engine:e ~transmit ~rto:0.2 () in
  sender_cell := Some sender;
  ack_to_sender := (fun seq -> Rudp.sender_on_ack sender seq);
  let receiver = Rudp.receiver ~deliver:(fun m -> delivered := m :: !delivered) ~send_ack () in
  recv_cell := Some receiver;
  (e, sender, receiver, delivered)

let test_rudp_reliable () =
  let e, sender, _, delivered = mk_rudp_pair ~loss:0.0 ~seed:1L in
  for i = 0 to 99 do
    Rudp.send sender ~bytes:16 i
  done;
  Engine.run ~until:30. e;
  checki "all delivered" 100 (List.length !delivered);
  checki "no retransmissions without loss" 0 (Rudp.retransmissions sender)

let test_rudp_under_loss () =
  let e, sender, receiver, delivered = mk_rudp_pair ~loss:0.3 ~seed:2L in
  for i = 0 to 199 do
    Rudp.send sender ~bytes:16 i
  done;
  Engine.run ~until:120. e;
  checki "all delivered despite 30% loss" 200 (List.length !delivered);
  checkb "exactly once" true
    (List.length (List.sort_uniq compare !delivered) = 200);
  checkb "retransmissions happened" true (Rudp.retransmissions sender > 0);
  checkb "duplicates were suppressed" true (Rudp.duplicates receiver >= 0);
  checki "nothing abandoned" 0 (Rudp.give_up_count sender)

let test_rudp_window_smoothing () =
  (* More messages than the window: the backlog queues and drains. *)
  let e, sender, _, delivered = mk_rudp_pair ~loss:0.0 ~seed:3L in
  for i = 0 to 499 do
    Rudp.send sender ~bytes:16 i
  done;
  checkb "window bounds in-flight" true (Rudp.in_flight sender <= 64);
  checkb "rest queued" true (Rudp.queued sender > 0);
  Engine.run ~until:60. e;
  checki "all delivered" 500 (List.length !delivered)

let test_rudp_gives_up () =
  (* A dead peer: the sender abandons after max_retries. *)
  let e = Engine.create ~seed:4L () in
  let sender =
    Rudp.sender ~engine:e ~transmit:(fun _ -> ()) ~rto:0.05 ~max_retries:3 ()
  in
  Rudp.send sender ~bytes:8 0;
  Engine.run ~until:10. e;
  checki "gave up" 1 (Rudp.give_up_count sender);
  checki "flight drained" 0 (Rudp.in_flight sender)

let test_rudp_packet_bytes () =
  checki "data framing" 28 (Rudp.packet_bytes (Rudp.Data { seq = 0; payload = (); bytes = 16 }));
  checki "ack framing" Rudp.ack_wire (Rudp.packet_bytes (Rudp.Ack { seq = 0 }))

let () =
  Alcotest.run "sim"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "split independent" `Quick test_rng_split_independent;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
         Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes ]);
      ("engine",
       [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
         Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
         Alcotest.test_case "until" `Quick test_engine_until;
         Alcotest.test_case "timer cancel" `Quick test_engine_timer_cancel;
         Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
         Alcotest.test_case "every" `Quick test_engine_every;
         Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
         Alcotest.test_case "heap stress" `Quick test_engine_heap_stress;
         Alcotest.test_case "pending excludes cancelled" `Quick
           test_engine_pending_live;
         Alcotest.test_case "closures collectable" `Quick
           test_engine_closure_collectable;
         Alcotest.test_case "every boundary semantics" `Quick
           test_engine_every_boundary;
         Alcotest.test_case "calendar = heap dispatch order" `Quick
           test_engine_queue_equivalence;
         Alcotest.test_case "event pool reuse" `Quick test_engine_pool_reuse ]);
      ("region",
       [ Alcotest.test_case "symmetric" `Quick test_region_symmetric;
         Alcotest.test_case "plausible latencies" `Quick test_region_plausible;
         Alcotest.test_case "server assignment" `Quick test_region_server_assignment ]);
      ("net",
       [ Alcotest.test_case "delivery time" `Quick test_net_delivery_time;
         Alcotest.test_case "egress serialises" `Quick test_net_egress_serializes;
         Alcotest.test_case "disconnect" `Quick test_net_disconnect;
         Alcotest.test_case "byte counters" `Quick test_net_counters;
         Alcotest.test_case "loss" `Quick test_net_loss;
         Alcotest.test_case "reconnect" `Quick test_net_reconnect;
         Alcotest.test_case "partition + heal" `Quick test_net_partition_heal;
         Alcotest.test_case "per-link loss" `Quick test_net_link_loss;
         Alcotest.test_case "degrade link" `Quick test_net_degrade_link;
         Alcotest.test_case "duplicate node" `Quick test_net_duplicate_node ]);
      ("cpu",
       [ Alcotest.test_case "fifo" `Quick test_cpu_fifo;
         Alcotest.test_case "capacity" `Quick test_cpu_capacity;
         Alcotest.test_case "utilization" `Quick test_cpu_utilization;
         Alcotest.test_case "windowed utilization" `Quick
           test_cpu_windowed_utilization;
         Alcotest.test_case "parallel splits across lanes" `Quick
           test_cpu_parallel_splits;
         Alcotest.test_case "serial occupies one lane" `Quick
           test_cpu_serial_occupies_one_lane;
         Alcotest.test_case "lane fairness" `Quick test_cpu_lane_fairness;
         Alcotest.test_case "serial tail after parallel" `Quick
           test_cpu_serial_after_parallel;
         Alcotest.test_case "backlog accounting" `Quick
           test_cpu_backlog_accounting;
         Alcotest.test_case "one core matches serial queue" `Quick
           test_cpu_one_core_matches_serial_queue ]);
      ("stats",
       Alcotest.test_case "summary" `Quick test_summary
       :: Alcotest.test_case "summary empty" `Quick test_summary_empty
       :: Alcotest.test_case "summary percentile cache" `Quick
            test_summary_percentile_cache
       :: Alcotest.test_case "summary nearest rank" `Quick
            test_summary_nearest_rank
       :: Alcotest.test_case "throughput window" `Quick test_throughput_window
       :: suite_stats_props);
      ("rudp",
       [ Alcotest.test_case "reliable without loss" `Quick test_rudp_reliable;
         Alcotest.test_case "exactly-once under 30% loss" `Quick test_rudp_under_loss;
         Alcotest.test_case "window smoothing" `Quick test_rudp_window_smoothing;
         Alcotest.test_case "gives up on dead peer" `Quick test_rudp_gives_up;
         Alcotest.test_case "packet framing" `Quick test_rudp_packet_bytes ]) ]
