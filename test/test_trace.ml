(* Tests for the trace subsystem: histogram bucket arithmetic, sink
   semantics (null / memory / ring), span pairing, Chrome export
   well-formedness, and the two end-to-end properties the ISSUE pins
   down — bit-identical traces across same-seed runs, and the
   telescoping per-phase latency decomposition. *)

open Repro_trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b

(* --- Hist ------------------------------------------------------------- *)

let test_hist_buckets () =
  (* bucket_lo/bucket_hi must bracket every value bucket_of assigns. *)
  List.iter
    (fun v ->
      let i = Trace.Hist.bucket_of v in
      checkb
        (Printf.sprintf "value %g in [lo, hi) of bucket %d" v i)
        true
        (Trace.Hist.bucket_lo i <= v
        && (v < Trace.Hist.bucket_hi i || i = 63)))
    [ 1e-9; 1e-6; 0.001; 0.5; 1.0; 1.5; 2.0; 3.9; 4.0; 1000.; 1e6 ];
  (* Exact powers of two start a fresh bucket. *)
  checki "2.0 one past 1.0" (Trace.Hist.bucket_of 1.0 + 1) (Trace.Hist.bucket_of 2.0);
  checki "1.0 and 1.99 share" (Trace.Hist.bucket_of 1.0) (Trace.Hist.bucket_of 1.99);
  checkf "lo of 1.0's bucket" 1.0 (Trace.Hist.bucket_lo (Trace.Hist.bucket_of 1.0));
  checkf "hi of 1.0's bucket" 2.0 (Trace.Hist.bucket_hi (Trace.Hist.bucket_of 1.0));
  (* Degenerate inputs clamp instead of escaping the array. *)
  checki "zero clamps to bucket 0" 0 (Trace.Hist.bucket_of 0.);
  checki "negative clamps to bucket 0" 0 (Trace.Hist.bucket_of (-3.));
  checkb "huge clamps below 64" true (Trace.Hist.bucket_of 1e30 < 64)

let test_hist_stats () =
  let h = Trace.Hist.create () in
  checkf "empty mean" 0. (Trace.Hist.mean h);
  List.iter (Trace.Hist.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  checki "count" 4 (Trace.Hist.count h);
  checkf "sum exact" 8.0 (Trace.Hist.sum h);
  checkf "mean exact" 2.0 (Trace.Hist.mean h);
  checkf "min exact" 0.5 (Trace.Hist.min h);
  checkf "max exact" 3.5 (Trace.Hist.max h);
  let p99 = Trace.Hist.percentile h 0.99 in
  checkb "p99 within observed range" true (p99 >= 0.5 && p99 <= 3.5);
  let p0 = Trace.Hist.percentile h 0.0 in
  checkb "p0 near min (bucket resolution)" true (p0 >= 0.5 && p0 <= 1.0);
  checki "buckets hold every sample" 4
    (Array.fold_left ( + ) 0 (Trace.Hist.buckets h))

(* --- Counters --------------------------------------------------------- *)

let test_counters () =
  let sink = Trace.Sink.null () in
  let c = Trace.Sink.counter sink ~cat:"net" ~name:"msgs" in
  Trace.Counter.incr c;
  Trace.Counter.add c 41;
  checki "accumulates on null sink" 42 (Trace.Counter.value c);
  let c' = Trace.Sink.counter sink ~cat:"net" ~name:"msgs" in
  Trace.Counter.incr c';
  checki "same (cat,name) is the same cell" 43 (Trace.Counter.value c);
  ignore (Trace.Sink.counter sink ~cat:"cpu" ~name:"jobs");
  Alcotest.(check (list (triple string string int)))
    "counters sorted" [ ("cpu", "jobs", 0); ("net", "msgs", 43) ]
    (Trace.Sink.counters sink)

(* --- Sinks ------------------------------------------------------------ *)

let emit_n sink n =
  for i = 0 to n - 1 do
    Trace.instant sink ~now:(float_of_int i) ~actor:0 ~cat:"t" ~name:"e" ~id:i
  done

let test_null_sink () =
  let sink = Trace.Sink.null () in
  checkb "disabled" false (Trace.Sink.enabled sink);
  emit_n sink 10;
  checki "stores nothing" 0 (Trace.Sink.length sink);
  checki "drops nothing (no-op, not a full ring)" 0 (Trace.Sink.dropped sink);
  checkb "no events" true (Trace.Sink.events sink = [])

let test_memory_sink () =
  let sink = Trace.Sink.memory () in
  checkb "enabled" true (Trace.Sink.enabled sink);
  emit_n sink 100;
  checki "keeps all" 100 (Trace.Sink.length sink);
  let ids = List.map (fun e -> e.Trace.ev_id) (Trace.Sink.events sink) in
  checkb "oldest first" true (ids = List.init 100 Fun.id);
  Trace.Sink.clear sink;
  checki "clear empties" 0 (Trace.Sink.length sink)

let test_ring_sink () =
  let sink = Trace.Sink.ring ~capacity:8 in
  emit_n sink 20;
  checki "capped at capacity" 8 (Trace.Sink.length sink);
  checki "dropped counts overwrites" 12 (Trace.Sink.dropped sink);
  let ids = List.map (fun e -> e.Trace.ev_id) (Trace.Sink.events sink) in
  checkb "retains the newest, oldest first" true
    (ids = [ 12; 13; 14; 15; 16; 17; 18; 19 ])

(* --- Span pairing ----------------------------------------------------- *)

let test_span_pair () =
  let sink = Trace.Sink.memory () in
  let b ?attrs now id =
    Trace.span_begin ?attrs sink ~now ~actor:1 ~cat:"x" ~name:"s" ~id
  and e ?attrs now id =
    Trace.span_end ?attrs sink ~now ~actor:1 ~cat:"x" ~name:"s" ~id
  in
  b 1.0 7 ~attrs:[ ("k", Trace.A_int 1) ];
  b 2.0 7 (* nested re-entry of the same key *);
  e 3.0 7;
  e 5.0 7 ~attrs:[ ("k2", Trace.A_bool true) ];
  b 6.0 9 (* unmatched begin: dropped *);
  e 6.5 99 (* unmatched end: dropped *);
  let spans = Trace.Span.pair (Trace.Sink.events sink) in
  checki "two spans paired" 2 (List.length spans);
  let s1 = List.nth spans 0 and s2 = List.nth spans 1 in
  (* LIFO: the inner [2,3] closes first, the outer [1,5] second. *)
  checkf "inner begin" 2.0 s1.Trace.Span.sp_begin;
  checkf "inner duration" 1.0 (Trace.Span.duration s1);
  checkf "outer begin" 1.0 s2.Trace.Span.sp_begin;
  checkf "outer duration" 4.0 (Trace.Span.duration s2);
  checkb "begin attrs concatenated with end attrs" true
    (s2.Trace.Span.sp_attrs
    = [ ("k", Trace.A_int 1); ("k2", Trace.A_bool true) ])

let test_key () =
  checkb "stable" true (Trace.key "root-a" = Trace.key "root-a");
  checkb "non-negative" true (Trace.key "anything" >= 0)

(* --- Chrome export ---------------------------------------------------- *)

(* Minimal JSON reader — just enough to check the exporter round-trips.
   No external deps allowed, so the test carries its own parser. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let next () = let c = peek () in incr pos; c in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' -> incr pos; skip_ws ()
      | _ -> ()
    in
    let expect c =
      if next () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
        | '\000' -> raise (Bad "eof in string")
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
          in
          members []
        end
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then (incr pos; List [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> List (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
          in
          elems []
        end
      | 't' -> pos := !pos + 4; Bool true
      | 'f' -> pos := !pos + 5; Bool false
      | 'n' -> pos := !pos + 4; Null
      | _ ->
        let start = !pos in
        let num_char c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while num_char (peek ()) do incr pos done;
        if !pos = start then raise (Bad (Printf.sprintf "bad value at %d" start));
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj kvs -> List.assoc k kvs
    | _ -> raise (Bad (k ^ ": not an object"))
end

let chrome_fixture () =
  let sink = Trace.Sink.memory () in
  Trace.span_begin sink ~now:0.001 ~actor:3 ~cat:"broker" ~name:"distill" ~id:42
    ~attrs:[ ("entries", Trace.A_int 5) ];
  Trace.instant sink ~now:0.002 ~actor:3 ~cat:"broker" ~name:"launch" ~id:42
    ~attrs:[ ("note", Trace.A_str "quote \" and \\ back\nslash") ];
  Trace.span_end sink ~now:0.004 ~actor:3 ~cat:"broker" ~name:"distill" ~id:42;
  Trace.count sink ~now:0.004 ~actor:3 ~cat:"net" ~name:"bytes" 1024.;
  Trace.Counter.add (Trace.Sink.counter sink ~cat:"sim" ~name:"steps") 17;
  sink

let test_chrome_json () =
  let sink = chrome_fixture () in
  let json = Json.parse (Chrome.to_string sink) in
  let events =
    match Json.member "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  let phs =
    List.map (fun e -> match Json.member "ph" e with Json.Str s -> s | _ -> "?") events
  in
  (* 1 paired span as X, 1 instant, 1 counter sample, 1 final counter total. *)
  checki "one complete event" 1 (List.length (List.filter (( = ) "X") phs));
  checki "one instant" 1 (List.length (List.filter (( = ) "i") phs));
  checki "counter sample + final total" 2 (List.length (List.filter (( = ) "C") phs));
  checkb "no unpaired B/E leak into the export" true
    (not (List.mem "B" phs || List.mem "E" phs));
  let x = List.find (fun e -> Json.member "ph" e = Json.Str "X") events in
  (match Json.member "ts" x, Json.member "dur" x with
  | Json.Num ts, Json.Num dur ->
    checkf "ts in microseconds" 1000. ts;
    checkf "dur in microseconds" 3000. dur
  | _ -> Alcotest.fail "ts/dur not numbers");
  (match Json.member "args" x with
  | Json.Obj kvs ->
    checkb "span args carry attrs" true (List.mem_assoc "entries" kvs)
  | _ -> Alcotest.fail "args not an object");
  let i = List.find (fun e -> Json.member "ph" e = Json.Str "i") events in
  (match Json.member "args" i with
  | Json.Obj kvs ->
    (match List.assoc "note" kvs with
    | Json.Str s ->
      Alcotest.(check string) "string attr escapes round-trip"
        "quote \" and \\ back\nslash" s
    | _ -> Alcotest.fail "note not a string")
  | _ -> Alcotest.fail "instant args not an object")

let test_chrome_jsonl () =
  let sink = chrome_fixture () in
  let lines =
    String.split_on_char '\n' (String.trim (Chrome.jsonl sink))
  in
  checki "one line per raw event" (Trace.Sink.length sink) (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "jsonl line not an object")
    lines

(* --- End-to-end: determinism + telescoping decomposition -------------- *)

let quick_params =
  { Repro_experiments.Chopchop_run.default with
    n_servers = 4; underlay = Repro_chopchop.Deployment.Pbft;
    rate = 100_000.; batch_count = 4096; n_load_brokers = 1;
    measure_clients = 2; duration = 6.; warmup = 4.; cooldown = 2.;
    dense_clients = 1_000_000 }

let captured =
  lazy
    (let module LB = Repro_experiments.Latency_breakdown in
    let a = LB.capture ~params:quick_params () in
    let b = LB.capture ~params:quick_params () in
    (a, b))

let test_trace_deterministic () =
  let (_, _, sink_a), (_, _, sink_b) = Lazy.force captured in
  checkb "same-seed runs emit non-empty traces" true
    (Trace.Sink.length sink_a > 0);
  checki "same event count" (Trace.Sink.length sink_a) (Trace.Sink.length sink_b);
  checkb "event streams bit-identical" true
    (Trace.Sink.events sink_a = Trace.Sink.events sink_b)

let test_breakdown_telescopes () =
  let (_, breakdown, _), _ = Lazy.force captured in
  let module LB = Repro_experiments.Latency_breakdown in
  checkb "decomposed at least one message" true (LB.complete breakdown > 0);
  let e2e = Trace.Hist.mean (LB.e2e breakdown) in
  let phase_sum = LB.sum_of_phase_means breakdown in
  checkb
    (Printf.sprintf "phase means sum to e2e within 5%% (%.4f vs %.4f)"
       phase_sum e2e)
    true
    (e2e > 0. && abs_float (phase_sum -. e2e) /. e2e < 0.05);
  checki "five paper phases" 5 (List.length (LB.phases breakdown));
  List.iter
    (fun (name, h) ->
      checkb (name ^ " phase non-negative") true (Trace.Hist.min h >= 0.))
    (LB.phases breakdown)

let () =
  Alcotest.run "trace"
    [ ( "hist",
        [ Alcotest.test_case "bucket boundaries" `Quick test_hist_buckets;
          Alcotest.test_case "exact stats + percentile" `Quick test_hist_stats ] );
      ( "counters",
        [ Alcotest.test_case "memoized, accumulate when disabled" `Quick
            test_counters ] );
      ( "sinks",
        [ Alcotest.test_case "null is a no-op" `Quick test_null_sink;
          Alcotest.test_case "memory keeps order" `Quick test_memory_sink;
          Alcotest.test_case "ring overwrites and counts drops" `Quick
            test_ring_sink ] );
      ( "spans",
        [ Alcotest.test_case "pairing (LIFO, unmatched dropped)" `Quick
            test_span_pair;
          Alcotest.test_case "correlation keys" `Quick test_key ] );
      ( "chrome",
        [ Alcotest.test_case "trace_event JSON parses back" `Quick
            test_chrome_json;
          Alcotest.test_case "jsonl one object per line" `Quick
            test_chrome_jsonl ] );
      ( "end-to-end",
        [ Alcotest.test_case "same seed, same trace" `Slow
            test_trace_deterministic;
          Alcotest.test_case "phase breakdown telescopes to e2e" `Slow
            test_breakdown_telescopes ] ) ]
